"""Learned (R-K style) warping bands from training alignments.

The paper's reference [2] (Ratanamahatana & Keogh, "Everything you
know about DTW is wrong") introduced bands of *arbitrary shape*
learned from the data, subsuming the uniform Sakoe-Chiba band.  The
construction here is the practical core of that idea:

1. align same-class training pairs with Full DTW;
2. record, per lattice row, the largest deviation any alignment used;
3. smooth and pad the per-row radii, and build a feasible
   :class:`~repro.core.window.Window` from them.

The learned window is exactly wide enough for the warping the data
actually exhibits -- usually far narrower than the uniform band with
the same worst-case deviation, which means fewer DP cells at equal
accuracy: the paper's "a little warping is a good thing" made
adaptive.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.dtw import dtw
from ..core.engine import DtwResult, dp_over_window
from ..core.validate import validate_series
from ..core.window import Window
from ..runtime import Runtime


def learn_band_radii(
    series: Sequence[Sequence[float]],
    labels: Optional[Sequence[object]] = None,
    slack: int = 1,
    smooth: int = 2,
    max_pairs_per_class: int = 20,
    runtime: Optional[Runtime] = None,
) -> List[int]:
    """Per-row band radii learned from same-class Full-DTW alignments.

    Parameters
    ----------
    series:
        Equal-length training series.
    labels:
        Optional class labels; when given, only same-class pairs are
        aligned (cross-class warping is noise for classification).
        Without labels, all pairs are used.
    slack:
        Cells added to every learned radius (safety margin).
    smooth:
        Half-width of a sliding-maximum smoothing over rows, so single
        noisy alignments cannot pinch the band.
    max_pairs_per_class:
        Cap on alignments per class (deterministic: first pairs in
        order), bounding the O(N^2)-per-alignment training cost.
    runtime:
        Execution context, per :mod:`repro.runtime` (``None`` = the
        process default).  A parallel context computes the training
        alignments as one :mod:`repro.batch` job; every backend and
        worker count recovers the exact same warping paths (the DP
        tie-break is backend-invariant), so the learned radii are
        identical in every context.

    Returns
    -------
    list[int]
        One radius per row, ``>= slack``.
    """
    if len(series) < 2:
        raise ValueError("need at least two training series")
    lengths = {len(s) for s in series}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    for i, s in enumerate(series):
        validate_series(s, f"series {i}")
    if labels is not None and len(labels) != len(series):
        raise ValueError("labels must match series")
    if slack < 0 or smooth < 0:
        raise ValueError("slack and smooth must be non-negative")
    rt = Runtime.resolve(runtime)
    n = lengths.pop()

    # group indices by class (or one group for unlabelled data)
    groups: dict = {}
    for idx in range(len(series)):
        key = labels[idx] if labels is not None else None
        groups.setdefault(key, []).append(idx)

    # the capped, deterministic pair order (first pairs per class)
    pair_indices: List[Tuple[int, int]] = []
    for members in groups.values():
        pairs = 0
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                if pairs >= max_pairs_per_class:
                    break
                pair_indices.append((members[a], members[b]))
                pairs += 1
            if pairs >= max_pairs_per_class:
                break
    if not pair_indices:
        raise ValueError(
            "no same-class pairs to align; provide more series per class"
        )

    radii = [0] * n
    for path in _alignment_paths(series, pair_indices, rt):
        for i, j in path:
            dev = abs(j - i)
            if dev > radii[i]:
                radii[i] = dev

    # sliding-maximum smoothing plus slack
    if smooth:
        smoothed = [
            max(radii[max(0, i - smooth):min(n, i + smooth + 1)])
            for i in range(n)
        ]
    else:
        smoothed = list(radii)
    return [r + slack for r in smoothed]


def _alignment_paths(series, pair_indices, rt: Runtime):
    """Full-DTW warping paths for ``pair_indices``, in order.

    The serial context aligns pair by pair on the runtime's kernel
    backend; a parallel one computes all alignments as a single
    :mod:`repro.batch` job.  Both recover identical paths (the
    diagonal-first backtracking tie-break is backend-invariant).
    """
    if rt.parallel:
        from ..batch.engine import batch_distances

        result = batch_distances(
            [list(s) for s in series],
            pairs=pair_indices,
            measure="dtw",
            return_paths=True,
            runtime=rt,
        )
        return list(result.paths)
    kernels = rt.kernels()
    if kernels.name == "python":
        return [
            dtw(series[a], series[b], return_path=True).path
            for a, b in pair_indices
        ]
    from ..core.kernels import full_window

    return [
        kernels.dtw(
            series[a], series[b],
            full_window(len(series[a]), len(series[b])),
            return_path=True,
        ).path
        for a, b in pair_indices
    ]


def window_from_radii(radii: Sequence[int], m: Optional[int] = None) -> Window:
    """Build a feasible window from per-row radii.

    ``m`` defaults to ``len(radii)`` (the equal-length classification
    setting).
    """
    n = len(radii)
    if n < 1:
        raise ValueError("need at least one radius")
    if any(r < 0 for r in radii):
        raise ValueError("radii must be non-negative")
    m = n if m is None else m
    slope = (m - 1) / (n - 1) if n > 1 else 0.0
    cells = []
    for i, r in enumerate(radii):
        centre = i * slope
        lo = max(0, int(centre - r))
        hi = min(m - 1, int(centre + r + 0.5))
        cells.append((i, lo))
        cells.append((i, hi))
    return Window.from_cells(n, m, cells)


def learned_band_dtw(
    x: Sequence[float],
    y: Sequence[float],
    radii: Sequence[int],
    cost: str = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
    runtime: Optional[Runtime] = None,
) -> DtwResult:
    """Exact DTW constrained to a learned band.

    ``radii`` must have been learned for series of ``len(x)`` rows.
    Only the runtime's kernel backend applies (one DP is not worth a
    fan-out); the result is bit-identical on every backend.
    """
    if len(x) != len(radii):
        raise ValueError(
            f"learned radii are for length {len(radii)}, got {len(x)}"
        )
    rt = Runtime.resolve(runtime)
    window = window_from_radii(radii, len(y))
    kernels = rt.kernels()
    if kernels.name == "python":
        return dp_over_window(
            x, y, window, cost=cost, return_path=return_path,
            abandon_above=abandon_above,
        )
    from ..core.validate import validate_pair

    validate_pair(x, y)
    return kernels.dtw(
        x, y, window, cost=cost, return_path=return_path,
        abandon_above=abandon_above,
    )
