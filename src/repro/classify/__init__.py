"""1-NN time-series classification and warping-window selection.

The UCR archive's headline numbers -- including the
``UWaveGestureLibraryAll`` error rates the paper quotes (Euclidean
0.052, cDTW_4 0.034, Full DTW 0.108) and the per-dataset "best w"
values behind Fig. 2 -- come from exactly this machinery: a
1-nearest-neighbour classifier whose distance is cDTW, with the window
chosen by brute-force leave-one-out cross-validation on the train set.
"""

from .knn import DistanceSpec, KNearestNeighbors, OneNearestNeighbor
from .learned_band import (
    learn_band_radii,
    learned_band_dtw,
    window_from_radii,
)
from .loocv import best_window_search, loocv_error

__all__ = [
    "DistanceSpec",
    "KNearestNeighbors",
    "OneNearestNeighbor",
    "best_window_search",
    "learn_band_radii",
    "learned_band_dtw",
    "loocv_error",
    "window_from_radii",
]
