"""One execution context for every repeated-use consumer.

PRs 1-4 each added an orthogonal execution knob -- ``workers=`` (the
batch pool), ``backend=`` (the kernel registry), ``executor=`` (the
persistent warm pool), ``chunksize=`` (the scheduling policy) -- and
threaded it by hand through every consumer signature.  This module
replaces that knob soup with a single frozen :class:`Runtime` value
that carries the full execution context, and a single resolution
point, :meth:`Runtime.resolve`, that merges

1. a per-call ``runtime=`` argument (wins outright),
2. per-call legacy kwargs (override individual fields, deprecated),
3. the process default set via :func:`set_default_runtime` or the
   scoped :func:`use_runtime` context manager,
4. environment seeding (``REPRO_WORKERS``, ``REPRO_BACKEND``,
   ``REPRO_EXECUTOR``, ``REPRO_CHUNKSIZE``),
5. the built-in serial pure-python default.

Consumers (classification, clustering, search, anomaly/motif
discovery, the batch engine itself) accept ``runtime=`` and delegate
every backend/executor/worker decision here; none of them resolves a
knob on its own (grep-enforced by ``tests/runtime/test_source_scan``).

``Runtime.backend=None`` deliberately stays un-resolved until use: it
means "the kernel registry's process default", so the pre-existing
:func:`repro.core.kernels.use_backend` scoping keeps working
underneath a runtime that does not pin a backend.

The paper-reproduction harnesses (:mod:`repro.timing`,
:mod:`repro.experiments`) are immune to all of this: they construct
their own explicit serial pure-python ``Runtime``, which
:meth:`Runtime.resolve` never merges with the process default (see
``repro.timing.runner.PINNED_BACKEND`` and the source-scan tests in
``tests/timing/test_backend_pin.py``).
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, replace as _dc_replace
from typing import Iterator, Optional

__all__ = [
    "Runtime",
    "default_runtime",
    "set_default_runtime",
    "use_runtime",
]

ENV_VARS = (
    "REPRO_BACKEND",
    "REPRO_WORKERS",
    "REPRO_EXECUTOR",
    "REPRO_CHUNKSIZE",
)


@dataclass(frozen=True)
class Runtime:
    """The full execution context, as one immutable value.

    Attributes
    ----------
    backend:
        Kernel backend name for the DP measures and lower bounds
        (``None`` = the :mod:`repro.core.kernels` process default,
        resolved at use time so :func:`~repro.core.kernels.use_backend`
        still scopes underneath).
    workers:
        Worker processes for batched fan-out (``1`` = in-process
        serial, the exact reference computation).
    executor:
        ``None`` (one-shot pools), ``"default"`` (the process-wide
        :func:`repro.batch.executor.default_executor`), or a
        :class:`repro.batch.executor.BatchExecutor` instance.  An
        executor implies the batched path and supplies the pool, so
        its worker count wins over ``workers``.
    chunksize:
        Chunk-planning policy for batch jobs: ``None``/``"auto"``
        (cell-cost model), ``"legacy"`` (pair-count heuristic), or an
        ``int`` fixing pairs per chunk.  Balance only; never results.
    trace:
        An optional :class:`repro.obs.RunTrace` to activate around
        work run under :meth:`activate` -- carried so one value can
        describe "how this workload executes *and* how it is
        observed".  Consumers do not consult it directly; the active
        trace remains :func:`repro.obs.active_trace`.
    """

    backend: Optional[str] = None
    workers: int = 1
    executor: object = None
    chunksize: object = None
    trace: object = None

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or isinstance(
            self.workers, bool
        ):
            raise ValueError("workers must be an int >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.backend is not None:
            from .core.kernels import resolve_backend

            resolve_backend(self.backend)
        cs = self.chunksize
        if cs is not None and cs not in ("auto", "legacy"):
            if not isinstance(cs, int) or isinstance(cs, bool) or cs < 1:
                raise ValueError(
                    "chunksize must be an int >= 1, 'auto', 'legacy' "
                    f"or None, got {cs!r}"
                )
        if self.executor is not None and self.executor != "default":
            from .batch.executor import BatchExecutor

            if not isinstance(self.executor, BatchExecutor):
                raise TypeError(
                    "executor must be None, 'default', or a "
                    f"BatchExecutor, got {self.executor!r}"
                )

    # -- derived views -----------------------------------------------------

    @property
    def parallel(self) -> bool:
        """Does this context fan work out (pool or executor)?"""
        return self.workers > 1 or self.executor is not None

    @property
    def backend_name(self) -> str:
        """The concrete backend name, resolved *now*.

        ``backend=None`` resolves through the kernel registry's
        process default at every call, so the answer can change under
        :func:`repro.core.kernels.use_backend`.
        """
        from .core.kernels import resolve_backend

        return resolve_backend(self.backend)

    def kernels(self):
        """The :class:`repro.core.kernels.KernelSet` this context uses."""
        from .core.kernels import get_kernels

        return get_kernels(self.backend)

    def resolved_executor(self):
        """The concrete executor, or ``None`` (one-shot semantics)."""
        from .batch.executor import resolve_executor

        return resolve_executor(self.executor)

    # -- derivation helpers ------------------------------------------------

    def replace(self, **changes) -> "Runtime":
        """A copy with ``changes`` applied (re-validated)."""
        return _dc_replace(self, **changes)

    def with_backend(self, backend: Optional[str]) -> "Runtime":
        """This context with ``backend`` substituted when not ``None``.

        The spec-level override hook: a
        :class:`repro.classify.knn.DistanceSpec` that names a backend
        wins over the runtime's, while ``None`` defers to it.
        """
        if backend is None:
            return self
        return _dc_replace(self, backend=backend)

    def serial(self) -> "Runtime":
        """This context forced in-process (for sequential cascades)."""
        if not self.parallel:
            return self
        return _dc_replace(self, workers=1, executor=None)

    @classmethod
    def resolve(
        cls,
        runtime: Optional["Runtime"] = None,
        *,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        executor: object = None,
        chunksize: object = None,
        trace: object = None,
    ) -> "Runtime":
        """The one resolution point: base context + per-call overrides.

        ``runtime`` (when given) is the base and is *not* merged with
        the process default -- an explicit Runtime is a complete
        statement of intent, which is what lets the paper harness pin
        itself.  Without it the base is :func:`default_runtime`
        (process default / environment / built-in).  Keyword overrides
        replace individual fields; ``None`` means "not passed".
        """
        if runtime is not None and not isinstance(runtime, Runtime):
            raise TypeError(
                f"runtime must be a Runtime or None, got {runtime!r}"
            )
        base = runtime if runtime is not None else default_runtime()
        overrides = {
            key: value
            for key, value in (
                ("workers", workers),
                ("backend", backend),
                ("executor", executor),
                ("chunksize", chunksize),
                ("trace", trace),
            )
            if value is not None
        }
        if not overrides:
            return base
        return base.replace(**overrides)

    # -- activation and introspection --------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Runtime"]:
        """Install as the scoped process default; enter any trace.

        ``with rt.activate():`` is :func:`use_runtime` plus activation
        of the attached :class:`~repro.obs.RunTrace` (when one is
        carried and not already active), so one ``with`` block states
        the complete execution-and-observation context.
        """
        from .obs import active_trace

        token = set_default_runtime(self)
        try:
            if self.trace is not None and active_trace() is not self.trace:
                with self.trace:
                    yield self
            else:
                yield self
        finally:
            set_default_runtime(token)

    def describe(self) -> dict:
        """JSON-ready description of the *effective* context.

        Powers ``python -m repro runtime``, the execution-stack
        doctor: requested vs resolved backend, worker count, executor
        state including shared-memory residency, chunk policy.
        """
        executor = None
        if self.executor is not None:
            exe = self.resolved_executor()
            executor = {
                "kind": (
                    "default" if self.executor == "default" else "instance"
                ),
                "workers": exe.workers,
                "start_method": exe.start_method,
                "use_shm": exe.use_shm,
                "closed": exe.closed,
                "shm_segments": list(exe.segment_names()),
            }
        return {
            "backend": self.backend,
            "backend_resolved": self.backend_name,
            "workers": self.workers,
            "executor": executor,
            "chunksize": (
                "auto" if self.chunksize is None else self.chunksize
            ),
            "parallel": self.parallel,
            "traced": self.trace is not None,
        }


# -- process default -------------------------------------------------------

_EXPLICIT_DEFAULT: Optional[Runtime] = None


def _runtime_from_env() -> Runtime:
    """The environment-seeded baseline (built-in when nothing is set)."""
    kwargs: dict = {}
    backend = os.environ.get("REPRO_BACKEND")
    if backend:
        kwargs["backend"] = backend
    workers = os.environ.get("REPRO_WORKERS")
    if workers:
        try:
            kwargs["workers"] = int(workers)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {workers!r}"
            )
    executor = os.environ.get("REPRO_EXECUTOR")
    if executor:
        if executor != "default":
            raise ValueError(
                f"REPRO_EXECUTOR must be 'default', got {executor!r}"
            )
        kwargs["executor"] = "default"
    chunksize = os.environ.get("REPRO_CHUNKSIZE")
    if chunksize:
        if chunksize in ("auto", "legacy"):
            kwargs["chunksize"] = chunksize
        else:
            try:
                kwargs["chunksize"] = int(chunksize)
            except ValueError:
                raise ValueError(
                    "REPRO_CHUNKSIZE must be an int, 'auto' or "
                    f"'legacy', got {chunksize!r}"
                )
    return Runtime(**kwargs)


def default_runtime() -> Runtime:
    """The process-default :class:`Runtime`.

    An explicit default (:func:`set_default_runtime` /
    :func:`use_runtime`) wins; otherwise the environment-seeded
    baseline, re-read on every call so tests and subprocesses see a
    live view.
    """
    if _EXPLICIT_DEFAULT is not None:
        return _EXPLICIT_DEFAULT
    return _runtime_from_env()


def set_default_runtime(
    runtime: Optional[Runtime],
) -> Optional[Runtime]:
    """Set (or with ``None`` clear) the explicit process default.

    Returns the previous explicit default (``None`` when the
    environment/built-in baseline was in effect), so callers can
    restore it -- :func:`use_runtime` is exactly that, scoped.
    """
    global _EXPLICIT_DEFAULT
    if runtime is not None and not isinstance(runtime, Runtime):
        raise TypeError(
            f"runtime must be a Runtime or None, got {runtime!r}"
        )
    previous = _EXPLICIT_DEFAULT
    _EXPLICIT_DEFAULT = runtime
    return previous


@contextmanager
def use_runtime(
    runtime: Optional[Runtime] = None, **fields
) -> Iterator[Runtime]:
    """Scoped :func:`set_default_runtime`, mirroring
    :func:`repro.core.kernels.use_backend`::

        with use_runtime(Runtime(workers=4, backend="numpy")):
            matrix = distance_matrix(series, window=0.1)

    Field shorthand derives from the current default::

        with use_runtime(backend="numpy"):
            ...
    """
    if runtime is None:
        runtime = default_runtime().replace(**fields)
    elif fields:
        runtime = runtime.replace(**fields)
    previous = set_default_runtime(runtime)
    try:
        yield runtime
    finally:
        set_default_runtime(previous)


# -- the shared deprecation shim -------------------------------------------


def _resolve_legacy(
    where: str, runtime: Optional[Runtime] = None, **legacy
) -> Runtime:
    """Resolve an entry point's legacy execution kwargs into a Runtime.

    Every consumer entry point funnels its deprecated ``workers=`` /
    ``backend=`` / ``executor=`` / ``chunksize=`` keywords through
    this single helper: one :class:`DeprecationWarning` per call (not
    per kwarg) naming the replacement, then the standard
    :meth:`Runtime.resolve` merge -- so legacy calls remain
    bit-identical to their ``runtime=`` equivalents.
    """
    passed = {k: v for k, v in legacy.items() if v is not None}
    if passed:
        names = ", ".join(f"{k}=" for k in sorted(passed))
        ctor = ", ".join(f"{k}=..." for k in sorted(passed))
        warnings.warn(
            f"{where}: the {names} keyword(s) are deprecated; pass "
            f"runtime=repro.runtime.Runtime({ctor}) instead, or set a "
            "process default with repro.runtime.use_runtime()",
            DeprecationWarning,
            stacklevel=3,
        )
    return Runtime.resolve(runtime, **passed)
