"""Motif discovery: the most conserved subsequence pair of a stream.

The mirror image of discord discovery (and another of the intro's
motivating tasks, "rule discovery"): find the two non-overlapping
windows that are *closest* under cDTW.  The same repeated-use
machinery applies -- every candidate pair races the best-so-far
through the lossless lower-bound cascade.
"""

from .discovery import Motif, find_motif

__all__ = ["Motif", "find_motif"]
