"""Top-motif discovery under banded DTW.

The *motif* of a stream is its most conserved structure: the pair of
non-overlapping length-``m`` windows with the smallest distance.  The
paper's Fig. 3 dishwasher pattern is exactly such a motif (the same
program recurring on different nights, warped by up to 34%).

The search is all-pairs with the package's lossless pruning: each
window's scan goes through the LB cascade against the global
best-so-far, so almost every pair is rejected by an O(1) or O(n)
bound rather than a DP.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import List, Optional, Sequence

from ..core.validate import validate_series
from ..lowerbounds.cascade import LowerBoundCascade
from ..preprocess.normalize import znorm, znorm_nd
from ..preprocess.sliding import sliding_windows
from ..runtime import Runtime


@dataclass(frozen=True)
class Motif:
    """The top motif pair and the work done finding it.

    Attributes
    ----------
    start_a, start_b:
        Offsets of the pair (``start_a < start_b``).
    distance:
        Their exact cDTW distance.
    windows:
        Candidate windows considered.
    distance_calls:
        Distance computations requested: cascade invocations under a
        serial runtime (naive: ``windows choose 2``), admissible
        pairs computed by the batch engine under a parallel one.
    """

    start_a: int
    start_b: int
    distance: float
    windows: int
    distance_calls: int


def find_motif(
    stream: Sequence[float],
    window: int,
    band: int,
    step: int = 1,
    exclusion: Optional[int] = None,
    normalize: bool = True,
    runtime: Optional[Runtime] = None,
    index=None,
) -> Motif:
    """Find the closest non-overlapping window pair under cDTW.

    Parameters mirror :func:`repro.anomaly.discord.find_discord`,
    including ``runtime``: a parallel execution context computes
    every admissible pair's exact distance as one :mod:`repro.batch`
    job and replays the identical earliest-pair selection, so the
    reported pair and distance are bit-identical to the serial
    cascade scan (whose pruning is lossless).  ``exclusion`` (default
    ``window``) keeps trivial self-matches of overlapping windows
    out.

    ``index`` accepts an ahead-of-time index of this stream's windows
    (as in :func:`repro.anomaly.discord.find_discord`): the all-pairs
    scan then reuses the stored windows and envelopes and adds the
    LB_Improved stage -- scan order, thresholds and
    ``distance_calls`` unchanged, result bit-identical.

    Returns
    -------
    Motif
        The provably closest admissible pair (ties resolve to the
        earliest pair in scan order).
    """
    rt = Runtime.resolve(runtime)
    if window < 2:
        raise ValueError("window must be at least 2")
    if step < 1:
        raise ValueError("step must be positive")
    exclusion = window if exclusion is None else exclusion
    if exclusion < 1:
        raise ValueError("exclusion must be positive")
    validate_series(stream, "stream")
    # multivariate streams pair up under the dependent measure
    # (cdtw_d), per-channel z-normalised -- mirroring find_discord
    nd = bool(stream) and hasattr(stream[0], "__len__")

    if index is not None:
        index.require(
            kind="windows", band=band, window=window, step=step,
            normalize=normalize,
            dims=len(stream[0]) if nd else 1,
        )
        index.verify_stream(stream)
        starts = list(index.starts)
        series = [list(s) for s in index.candidate_series()]
    else:
        starts = []
        series = []
        for start, w in sliding_windows(stream, window, step):
            starts.append(start)
            if nd:
                vw = [tuple(float(c) for c in v) for v in w]
                series.append(znorm_nd(vw) if normalize else vw)
            else:
                series.append(znorm(w) if normalize else w)
    k = len(series)
    if k < 2 or starts[-1] - starts[0] < exclusion:
        raise ValueError("stream too short for two non-overlapping windows")

    best = inf
    best_pair = (-1, -1)
    calls = 0
    if rt.parallel and index is None:
        from ..batch.engine import batch_distances

        pairs = [
            (i, j)
            for i in range(k)
            for j in range(i + 1, k)
            if starts[j] - starts[i] >= exclusion
        ]
        if pairs:
            result = batch_distances(
                series, pairs=pairs, measure="cdtw_d" if nd else "cdtw",
                band=band, runtime=rt,
            )
            calls = len(pairs)
            # identical selection to the serial scan: pairs are
            # generated in scan order and the comparison is strict
            for (i, j), d in zip(pairs, result.distances):
                if d < best:
                    best = d
                    best_pair = (i, j)
    else:
        searcher = (
            index.searcher(runtime=rt) if index is not None else None
        )
        for i in range(k):
            if searcher is not None:
                scan = searcher.scan(series[i], query_index=i)
                distance_to = scan.distance
            else:
                scan = None
                cascade = LowerBoundCascade(series[i], band, runtime=rt)
                distance_to = (
                    lambda j, bound, _c=cascade:
                    _c.distance(series[j], best_so_far=bound)
                )
            try:
                for j in range(i + 1, k):
                    if starts[j] - starts[i] < exclusion:
                        continue
                    calls += 1
                    d = distance_to(j, best)
                    if d < best:
                        best = d
                        best_pair = (i, j)
            finally:
                if scan is not None:
                    scan.close()
    if best_pair[0] < 0:
        raise ValueError("no admissible window pairs")
    return Motif(
        start_a=starts[best_pair[0]],
        start_b=starts[best_pair[1]],
        distance=best,
        windows=k,
        distance_calls=calls,
    )
