"""Anomaly detection: time-series discord discovery under cDTW.

One of the intro's motivating tasks ("similarity search, clustering,
classification, anomaly detection...").  A *discord* is the
subsequence whose nearest non-overlapping neighbour is farthest away
-- the stream's most anomalous window.  Finding it is a nested search
that multiplies the repeated-use argument of Section 3.4: every inner
nearest-neighbour scan benefits from the lossless lower-bound cascade,
and the outer loop adds its own early abandoning.  None of this is
available to FastDTW.
"""

from .discord import Discord, find_discord

__all__ = ["Discord", "find_discord"]
