"""Discord discovery: the most anomalous subsequence of a stream.

The classic definition (Keogh et al.): among all length-``m`` windows
of a stream, the *discord* is the one whose nearest neighbour -- over
windows that do not overlap it -- is farthest away under the chosen
distance (here banded cDTW on z-normalised windows).

The brute-force search is O(windows^2) distance calls; two standard
exact optimisations keep it tractable:

* **inner early abandoning** -- each candidate's nearest-neighbour
  scan goes through the lossless LB cascade with the candidate's
  current nearest as the threshold;
* **outer early abandoning** -- once a candidate's running nearest
  drops below the best discord score so far, the candidate provably
  cannot be the discord and its scan stops.

Both are threshold tricks of exactly the kind the paper's Section 3.4
notes are unavailable to FastDTW.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import List, Optional, Sequence

from ..core.validate import validate_series
from ..lowerbounds.cascade import LowerBoundCascade
from ..preprocess.normalize import znorm, znorm_nd
from ..preprocess.sliding import sliding_windows
from ..runtime import Runtime


@dataclass(frozen=True)
class Discord:
    """The discord and the work done finding it.

    Attributes
    ----------
    start:
        Offset of the discord window in the stream.
    score:
        Its nearest-non-overlapping-neighbour distance.
    neighbor_start:
        Offset of that nearest neighbour.
    windows:
        Number of candidate windows considered.
    distance_calls:
        Distance computations requested.  Under a serial runtime:
        cascade invocations before its own pruning (naive count
        ``windows * (windows - 1)``).  Under a parallel runtime: the
        admissible *unordered* pairs actually computed -- cDTW is
        symmetric, so each pair is evaluated once and mirrored.
    """

    start: int
    score: float
    neighbor_start: int
    windows: int
    distance_calls: int


def find_discord(
    stream: Sequence[float],
    window: int,
    band: int,
    step: int = 1,
    exclusion: Optional[int] = None,
    normalize: bool = True,
    runtime: Optional[Runtime] = None,
    index=None,
) -> Discord:
    """Find the top discord of ``stream`` under banded cDTW.

    Parameters
    ----------
    stream:
        The series to scan; must contain at least two non-overlapping
        windows.
    window:
        Subsequence length ``m``.
    band:
        cDTW band half-width in cells.
    step:
        Stride between candidate window starts.
    exclusion:
        Overlap radius: neighbours with ``|start_a - start_b| <
        exclusion`` are ignored (default: ``window``, i.e. no overlap).
    normalize:
        Z-normalise windows (the meaningful setting).
    runtime:
        Execution context, per :mod:`repro.runtime` (``None`` = the
        process default).  The serial context runs the
        doubly-abandoning scan above; a parallel one computes every
        admissible pair's exact distance as one :mod:`repro.batch`
        job and replays the identical selection.  Both abandonings
        are lossless (they only discard provable losers), so
        ``start``, ``score`` and ``neighbor_start`` are bit-identical
        in every context; only the ``distance_calls`` provenance
        differs (see :class:`Discord`).
    index:
        Optional ahead-of-time index of this stream's windows (built
        by ``repro.index`` with the same ``window``/``band``/
        ``step``/``normalize``; fingerprint-verified).  The scan then
        serves the stored z-normalised windows and every envelope --
        the candidate's *and* each neighbour's -- from the index and
        adds the LB_Improved stage.  Scan order, thresholds and
        ``distance_calls`` are unchanged, so the result is
        bit-identical to the serial index-free scan.  The indexed
        path is sequential; a parallel runtime contributes only its
        backend.

    Returns
    -------
    Discord
        The window with the provably largest nearest-neighbour
        distance (ties resolve to the earliest offset).
    """
    rt = Runtime.resolve(runtime)
    if window < 2:
        raise ValueError("window must be at least 2")
    if step < 1:
        raise ValueError("step must be positive")
    exclusion = window if exclusion is None else exclusion
    if exclusion < 1:
        raise ValueError("exclusion must be positive")
    validate_series(stream, "stream")
    # multivariate streams scan under the dependent measure (cdtw_d
    # semantics: one DP over vector samples), windows z-normalised
    # per channel
    nd = bool(stream) and hasattr(stream[0], "__len__")

    if index is not None:
        index.require(
            kind="windows", band=band, window=window, step=step,
            normalize=normalize,
            dims=len(stream[0]) if nd else 1,
        )
        index.verify_stream(stream)
        starts = list(index.starts)
        series = [list(s) for s in index.candidate_series()]
    else:
        starts = []
        series = []
        for start, w in sliding_windows(stream, window, step):
            starts.append(start)
            if nd:
                vw = [tuple(float(c) for c in v) for v in w]
                series.append(znorm_nd(vw) if normalize else vw)
            else:
                series.append(znorm(w) if normalize else w)
    k = len(series)
    if k < 2:
        raise ValueError("stream too short for two windows")
    if starts[-1] - starts[0] < exclusion:
        raise ValueError(
            "exclusion zone leaves every window without candidates"
        )

    best_score = -inf
    best_idx = -1
    best_neighbor = -1
    calls = 0

    if rt.parallel and index is None:
        dist, calls = _pairwise_distances(series, starts, exclusion,
                                          band, rt)
        for i in range(k):
            nn = inf
            nn_idx = -1
            for j in range(k):
                if abs(starts[i] - starts[j]) < exclusion:
                    continue
                d = dist[(i, j) if i < j else (j, i)]
                if d < nn:
                    nn, nn_idx = d, j
            if nn_idx >= 0 and nn > best_score:
                best_score = nn
                best_idx = i
                best_neighbor = nn_idx
    else:
        searcher = (
            index.searcher(runtime=rt) if index is not None else None
        )
        for i in range(k):
            if searcher is not None:
                scan = searcher.scan(series[i], query_index=i)
                distance_to = scan.distance
            else:
                scan = None
                cascade = LowerBoundCascade(series[i], band, runtime=rt)
                distance_to = (
                    lambda j, bound, _c=cascade:
                    _c.distance(series[j], best_so_far=bound)
                )
            nn = inf
            nn_idx = -1
            try:
                for j in range(k):
                    if abs(starts[i] - starts[j]) < exclusion:
                        continue
                    calls += 1
                    d = distance_to(j, nn)
                    if d < nn:
                        nn, nn_idx = d, j
                    if nn < best_score:
                        # outer early abandoning: this candidate's
                        # neighbour is already closer than the best
                        # discord's -- it can only get closer, so it
                        # cannot win
                        break
                else:
                    if nn_idx >= 0 and nn > best_score:
                        best_score = nn
                        best_idx = i
                        best_neighbor = nn_idx
            finally:
                if scan is not None:
                    scan.close()

    if best_idx < 0:
        raise ValueError("no discord found (no valid neighbour pairs)")
    return Discord(
        start=starts[best_idx],
        score=best_score,
        neighbor_start=starts[best_neighbor],
        windows=k,
        distance_calls=calls,
    )


def _pairwise_distances(series, starts, exclusion, band, rt):
    """Exact cDTW for every admissible unordered window pair, batched.

    cDTW with a symmetric local cost is symmetric under argument
    transposition (the DP recurrence transposes exactly; the vector
    squared cost of ``cdtw_d`` is just as symmetric), so each
    unordered pair is computed once and serves both scan directions.
    """
    from ..batch.engine import batch_distances

    k = len(series)
    nd = bool(series[0]) and hasattr(series[0][0], "__len__")
    pairs = [
        (i, j)
        for i in range(k)
        for j in range(i + 1, k)
        if abs(starts[i] - starts[j]) >= exclusion
    ]
    if not pairs:
        return {}, 0
    result = batch_distances(
        series, pairs=pairs, measure="cdtw_d" if nd else "cdtw",
        band=band, runtime=rt,
    )
    return dict(zip(pairs, result.distances)), len(pairs)
