"""The parallel batch distance engine.

Every headline experiment in the paper -- the Fig. 1/4 timing sweeps,
the 1-NN and clustering tables -- is a *repeated-use* workload:
thousands of independent pairwise distance calls over one series set.
This module executes such a batch as a first-class job:

* work arrives as index **pairs** into a shared series list, so each
  series is shipped to each worker once, not once per pair;
* pairs are **chunked** and fanned out over a ``multiprocessing`` pool
  (``workers=1``, the default, runs in-process with zero pool
  overhead and is the exact serial computation);
* each worker holds a :class:`~repro.batch.cache.SeriesCache`, so
  per-series artefacts (z-normalised copies, LB_Keogh envelopes) are
  computed once per series per worker, not once per pair;
* results come back in **input pair order** regardless of worker
  count or completion order -- determinism is a contract, enforced by
  the property suite in ``tests/batch/``;
* per-pair DP cell counts are preserved and summed into the same
  ``cells`` provenance the serial code paths report.

The serial and parallel paths run byte-identical per-pair
computations (same :func:`repro.core.measures.measure_fn` dispatch),
so distances and cell totals agree exactly -- not merely to within
floating-point noise.

``backend="numpy"`` routes the exact DP measures through the
vectorised kernels of :mod:`repro.core.kernels`; distance-only
dtw/cdtw batches additionally collapse each chunk into stacked
:func:`repro.core.numpy_backend.dtw_numpy_batch` calls (grouped by
series shape), which is where the batch engine earns its hardware
speed.  Distances and cells remain bit-identical to the pure engine
for every worker count -- the equivalence suite runs the same
property tests over both backends.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.cost import CostLike
from ..core.measures import MEASURES, measure_fn, split_result
from ..lowerbounds.lb_keogh import lb_keogh
from ..obs import trace as _obs
from ..runtime import Runtime
from .cache import CacheStats, SeriesCache

Pair = Tuple[int, int]


@dataclass(frozen=True)
class BatchSpec:
    """Immutable description of one batch's distance configuration.

    The spec (not a callable) is what crosses the process boundary:
    each pool worker rebuilds its dispatch function from it, so no
    closures need pickling.
    """

    measure: str = "cdtw"
    window: Optional[float] = None
    band: Optional[int] = None
    radius: int = 1
    cost: CostLike = "squared"
    normalize: bool = False
    return_paths: bool = False
    backend: str = "python"

    def __post_init__(self) -> None:
        if self.measure not in MEASURES:
            raise ValueError(
                f"unknown measure {self.measure!r}; pick from {MEASURES}"
            )
        from ..core.kernels import resolve_backend

        resolve_backend(self.backend)

    def make_fn(self):
        """The pairwise callable this spec describes."""
        return measure_fn(
            self.measure,
            window=self.window,
            band=self.band,
            radius=self.radius,
            cost=self.cost,
            return_path=self.return_paths,
            backend=self.backend,
        )

    def vectorizable(self) -> bool:
        """Can whole chunks collapse into stacked kernel calls?

        True for distance-only dtw/cdtw batches on the numpy backend
        with a named cost -- the configurations where
        :func:`repro.core.numpy_backend.dtw_numpy_batch` applies.
        """
        return (
            self.backend == "numpy"
            and self.measure in ("dtw", "cdtw")
            and not self.return_paths
            and isinstance(self.cost, str)
        )


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batch run, ordered like the input pairs.

    Attributes
    ----------
    pairs:
        The index pairs computed, in input order.
    distances:
        ``distances[t]`` is the distance of ``pairs[t]``.
    cells_per_pair:
        DP cells evaluated for each pair (0 for Euclidean).
    cells:
        Sum of ``cells_per_pair`` -- the same provenance number the
        serial code paths report.
    paths:
        Warping paths per pair when the spec asked for them
        (``None`` otherwise; Euclidean pairs yield ``None`` entries).
    measure:
        The measure name that produced the batch.
    workers:
        Worker processes used (1 = in-process serial).
    cache:
        Aggregated :class:`CacheStats` over all workers.
    """

    pairs: Tuple[Pair, ...]
    distances: Tuple[float, ...]
    cells_per_pair: Tuple[int, ...]
    cells: int
    measure: str
    workers: int
    cache: CacheStats
    paths: Optional[Tuple[object, ...]] = None

    def __len__(self) -> int:
        return len(self.pairs)


def all_pairs(k: int) -> List[Pair]:
    """The ``k * (k - 1) / 2`` unordered pairs, lexicographic.

    >>> all_pairs(3)
    [(0, 1), (0, 2), (1, 2)]
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    return list(itertools.combinations(range(k), 2))


def default_chunksize(n_tasks: int, workers: int) -> int:
    """The legacy pair-count heuristic: ~4 chunks per worker.

    Large enough to amortise IPC per pair, small enough that a slow
    chunk cannot leave workers idle for long -- but blind to how much
    each pair actually costs, which is why ``chunksize="auto"`` (the
    default) now plans by predicted DP cells instead
    (:mod:`repro.batch.schedule`).  Reachable via
    ``chunksize="legacy"``; for uniform-length single-measure batches
    the two plans coincide.

    >>> default_chunksize(100, 4)
    7
    >>> default_chunksize(3, 8)
    1
    """
    if n_tasks < 0 or workers < 1:
        raise ValueError("need n_tasks >= 0 and workers >= 1")
    return max(1, math.ceil(n_tasks / (workers * 4)))


def argmin_first(values: Sequence[float]) -> Tuple[int, float]:
    """Index and value of the minimum, first index winning ties.

    This is the tie-breaking rule every serial scan in the package
    uses (``if d < best`` with ascending iteration), restated once so
    the batched paths provably match it.

    >>> argmin_first([3.0, 1.0, 1.0, 2.0])
    (1, 1.0)
    """
    if not values:
        raise ValueError("argmin of an empty sequence")
    best_idx, best = 0, values[0]
    for i in range(1, len(values)):
        if values[i] < best:
            best, best_idx = values[i], i
    return best_idx, best


# -- worker-side machinery ------------------------------------------------
#
# Pool workers cannot receive closures, so each worker rebuilds its
# context (series cache + dispatch callable) from picklable pieces in
# the pool initializer and parks it in a module global.

class _WorkerContext:
    __slots__ = (
        "cache", "spec", "fn", "vectorize", "lb_band", "lb_squared",
        "lb_backend", "traced",
    )

    def __init__(self, series, spec=None, lb_band=None, lb_squared=True,
                 lb_backend="python", traced=False):
        self.cache = SeriesCache(series)
        self.spec = spec
        self.fn = spec.make_fn() if spec is not None else None
        self.vectorize = spec.vectorizable() if spec is not None else False
        self.lb_band = lb_band
        self.lb_squared = lb_squared
        self.lb_backend = lb_backend
        self.traced = traced


_CONTEXT: Optional[_WorkerContext] = None


def _init_distance_worker(series, spec, traced=False):
    global _CONTEXT
    # a forked worker inherits the parent's active RunTrace object; it
    # must never record into that copy (the parent merges snapshots
    # instead), so the observability state is always cleared here
    _obs.reset()
    _CONTEXT = _WorkerContext(series, spec=spec, traced=traced)


def _init_lb_worker(series, band, squared, backend, traced=False):
    global _CONTEXT
    _obs.reset()
    _CONTEXT = _WorkerContext(
        series, lb_band=band, lb_squared=squared, lb_backend=backend,
        traced=traced,
    )


def _compute_pair(ctx: _WorkerContext, i: int, j: int):
    if ctx.spec.normalize:
        x, y = ctx.cache.normalized(i), ctx.cache.normalized(j)
    else:
        x, y = ctx.cache.raw(i), ctx.cache.raw(j)
    return split_result(ctx.fn(x, y))


def _spec_window(spec: BatchSpec, n: int, m: int):
    from ..core.kernels import banded_window, fraction_window, full_window

    if spec.measure == "dtw":
        return full_window(n, m)
    if (spec.window is None) == (spec.band is None):
        raise ValueError("specify exactly one of window= or band=")
    if spec.window is not None:
        return fraction_window(n, m, spec.window)
    return banded_window(n, m, spec.band)


def _compute_chunk_vectorized(ctx: _WorkerContext, chunk: Sequence[Pair]):
    """One stacked kernel call per series shape in the chunk.

    Per-pair results are bit-identical to :func:`_compute_pair` under
    the same spec (the wavefront kernel evaluates the same DP lattice
    in an order-independent schedule), so reassembling in input order
    preserves the engine's determinism contract.
    """
    import numpy as np

    from ..core.numpy_backend import dtw_numpy_batch
    from ..core.validate import validate_pair

    get = ctx.cache.normalized if ctx.spec.normalize else ctx.cache.raw
    groups: dict = {}
    for t, (i, j) in enumerate(chunk):
        x, y = get(i), get(j)
        validate_pair(x, y)
        groups.setdefault((len(x), len(y)), []).append((t, x, y))
    out = [None] * len(chunk)
    for (n, m), items in groups.items():
        win = _spec_window(ctx.spec, n, m)
        cells = win.cell_count()
        xs = np.array([x for _, x, _ in items], dtype=np.float64)
        ys = np.array([y for _, _, y in items], dtype=np.float64)
        with _obs.span("dp"):
            distances = dtw_numpy_batch(xs, ys, win, cost=ctx.spec.cost)
        # the stacked kernel bypasses the per-call dp hooks, so the
        # dp.* counters are charged here -- one call and ``cells``
        # lattice cells per pair, exactly what the scalar path records
        _obs.incr("dp.calls", len(items))
        _obs.incr("dp.cells", cells * len(items))
        for (t, _, _), d in zip(items, distances.tolist()):
            out[t] = (d, cells, None)
    return out


def _distance_chunk_outputs(ctx: _WorkerContext, chunk: Sequence[Pair]):
    """Run one distance chunk against an explicit context.

    Shared by the one-shot pool path (context parked in the module
    global by the initializer) and the persistent executor (contexts
    cached per dataset fingerprint) -- the per-pair computation is one
    code path regardless of how the context got there.
    """
    before = ctx.cache.stats()
    if ctx.traced:
        with _obs.RunTrace(label="batch-worker") as wtrace:
            wtrace.incr("pool.chunks")
            if ctx.vectorize:
                out = _compute_chunk_vectorized(ctx, chunk)
            else:
                out = [_compute_pair(ctx, i, j) for i, j in chunk]
        return out, ctx.cache.stats() - before, wtrace.snapshot()
    if ctx.vectorize:
        out = _compute_chunk_vectorized(ctx, chunk)
    else:
        out = [_compute_pair(ctx, i, j) for i, j in chunk]
    return out, ctx.cache.stats() - before, None


def _run_distance_chunk(chunk: Sequence[Pair]):
    return _distance_chunk_outputs(_CONTEXT, chunk)


def _compute_lb(ctx: _WorkerContext, i: int, j: int) -> float:
    env = ctx.cache.envelope(i, ctx.lb_band)
    _obs.incr("lb.invocations")
    return lb_keogh(env, ctx.cache.raw(j), squared=ctx.lb_squared)


def _compute_lb_chunk_vectorized(ctx: _WorkerContext, chunk: Sequence[Pair]):
    """Batched LB_Keogh: one kernel call per (query, length) group.

    The numpy reduction may differ from the scalar sum in final ulps
    (both are valid lower bounds); within the backend the value is
    independent of worker count, because each pair's bound is a
    self-contained row reduction.
    """
    from ..core.numpy_backend import lb_keogh_batch

    _obs.incr("lb.invocations", len(chunk))
    groups: dict = {}
    for t, (i, j) in enumerate(chunk):
        cand = ctx.cache.raw(j)
        groups.setdefault((i, len(cand)), []).append((t, cand))
    out = [0.0] * len(chunk)
    for (i, _), items in groups.items():
        env = ctx.cache.envelope(i, ctx.lb_band)
        bounds = lb_keogh_batch(
            env, [cand for _, cand in items], squared=ctx.lb_squared
        )
        for (t, _), b in zip(items, bounds.tolist()):
            out[t] = b
    return out


def _lb_chunk_outputs(ctx: _WorkerContext, chunk: Sequence[Pair]):
    """Run one LB_Keogh chunk against an explicit context (see
    :func:`_distance_chunk_outputs`)."""
    before = ctx.cache.stats()
    if ctx.traced:
        with _obs.RunTrace(label="batch-worker") as wtrace:
            wtrace.incr("pool.chunks")
            if ctx.lb_backend == "numpy":
                out = _compute_lb_chunk_vectorized(ctx, chunk)
            else:
                out = [_compute_lb(ctx, i, j) for i, j in chunk]
        return out, ctx.cache.stats() - before, wtrace.snapshot()
    if ctx.lb_backend == "numpy":
        out = _compute_lb_chunk_vectorized(ctx, chunk)
    else:
        out = [_compute_lb(ctx, i, j) for i, j in chunk]
    return out, ctx.cache.stats() - before, None


def _run_lb_chunk(chunk: Sequence[Pair]):
    return _lb_chunk_outputs(_CONTEXT, chunk)


def _record_cache_stats(trace, stats: CacheStats) -> None:
    """Mirror a job's aggregated :class:`CacheStats` into a trace."""
    trace.incr("cache.envelope_hits", stats.envelope_hits)
    trace.incr("cache.envelope_misses", stats.envelope_misses)
    trace.incr("cache.znorm_hits", stats.znorm_hits)
    trace.incr("cache.znorm_misses", stats.znorm_misses)


def _pick_context(start_method: Optional[str]):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    # fork is far cheaper per pool and inherits the parent's modules;
    # platforms without it (e.g. Windows) fall back to spawn.
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _validated_pairs(
    pairs: Optional[Iterable[Pair]], k: int
) -> List[Pair]:
    if pairs is None:
        return all_pairs(k)
    out: List[Pair] = []
    for pair in pairs:
        i, j = pair
        if not (0 <= i < k and 0 <= j < k):
            raise ValueError(
                f"pair ({i}, {j}) out of range for {k} series"
            )
        out.append((i, j))
    return out


def _fan_out(
    chunks, workers, initializer, initargs, chunk_runner, start_method,
):
    """One-shot pool: fork, map the chunks, tear down.

    The series set rides in ``initargs`` (pickled once per worker per
    call -- the cold cost that :class:`repro.batch.executor.
    BatchExecutor` exists to amortise away).
    """
    ctx = _pick_context(start_method)
    with ctx.Pool(
        processes=workers, initializer=initializer, initargs=initargs
    ) as pool:
        # pool.map preserves submission order, so reassembly is a
        # flatten -- determinism does not depend on worker scheduling.
        return pool.map(chunk_runner, chunks)


def _resolve_chunks(task_list, workers, chunksize, cost_fn):
    """Turn a ``chunksize=`` argument into the actual chunk plan.

    ``None``/``"auto"`` route through the cell-cost model
    (:func:`repro.batch.schedule.plan_chunks`): chunks of ~equal
    predicted DP cost, so long-series pairs get small chunks and
    cheap ones aggregate.  ``"legacy"`` keeps the original blind
    "~4 chunks per worker" pair-count heuristic
    (:func:`default_chunksize`) reachable; an ``int`` fixes the pair
    count per chunk exactly.  Every option flattens back to the input
    pair order, so the plan never affects results -- only balance.
    """
    if chunksize is None or chunksize == "auto":
        from .schedule import plan_chunks

        return plan_chunks(task_list, cost_fn, workers)
    if chunksize == "legacy":
        size = default_chunksize(len(task_list), workers)
    elif isinstance(chunksize, int):
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        size = chunksize
    else:
        raise ValueError(
            "chunksize must be an int >= 1, 'auto', 'legacy' or None, "
            f"got {chunksize!r}"
        )
    return [
        task_list[k:k + size] for k in range(0, len(task_list), size)
    ]


def batch_distances(
    series: Sequence[Sequence[float]],
    pairs: Optional[Iterable[Pair]] = None,
    measure: str = "cdtw",
    window: Optional[float] = None,
    band: Optional[int] = None,
    radius: int = 1,
    cost: CostLike = "squared",
    normalize: bool = False,
    return_paths: bool = False,
    workers: Optional[int] = None,
    chunksize=None,
    start_method: Optional[str] = None,
    backend: Optional[str] = None,
    executor=None,
    runtime: Optional[Runtime] = None,
) -> BatchResult:
    """Compute many independent pairwise distances as one batch.

    Parameters
    ----------
    series:
        The shared series set; tasks index into it.
    pairs:
        Index pairs to compute, in the order results should come back
        (default: all unordered pairs ``i < j``).
    measure, window, band, radius, cost:
        Distance configuration, exactly as in
        :func:`repro.core.matrix.distance_matrix`.
    normalize:
        Z-normalise each series (once per series per worker, via the
        cache) before measuring.
    return_paths:
        Also return warping paths (exact measures recover them;
        Euclidean entries are ``None``).
    workers, chunksize, backend, executor:
        Per-call overrides of the corresponding
        :class:`repro.runtime.Runtime` fields.  The engine *is* the
        execution layer, so these remain its native vocabulary (no
        deprecation here, unlike the consumer entry points); ``None``
        means "defer to ``runtime=`` / the process default".
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else ``spawn``).  Ignored when an executor is in
        play (the executor owns its pool).
    runtime:
        The base execution context (see :mod:`repro.runtime`).
        ``None`` uses the process default
        (:func:`repro.runtime.default_runtime`); the built-in default
        is the in-process serial pure-python computation.

    Returns
    -------
    BatchResult
        Distances/cells in input pair order; identical values for any
        worker count -- the serial-equivalence suite enforces this.
    """
    rt = Runtime.resolve(
        runtime, workers=workers, backend=backend, executor=executor,
        chunksize=chunksize,
    )
    if not series:
        raise ValueError("need at least one series")
    spec = BatchSpec(
        measure=measure, window=window, band=band, radius=radius,
        cost=cost, normalize=normalize, return_paths=return_paths,
        backend=rt.backend_name,
    )
    task_list = _validated_pairs(pairs, len(series))
    series_t = tuple(tuple(float(v) for v in s) for s in series)
    trace = _obs.active_trace()
    if trace is not None:
        trace.incr("batch.jobs")
        trace.incr("batch.pairs", len(task_list))

    if not rt.parallel or len(task_list) == 0:
        # in-process: the per-pair hooks report straight into the
        # parent's active trace, no snapshot round-trip needed
        context = _WorkerContext(series_t, spec=spec)
        if context.vectorize and task_list:
            outcomes = _compute_chunk_vectorized(context, task_list)
        else:
            outcomes = [
                _compute_pair(context, i, j) for i, j in task_list
            ]
        stats = context.cache.stats()
        effective_workers = 1
    else:
        from .schedule import distance_pair_cost

        exe = rt.resolved_executor()
        effective = exe.workers if exe is not None else rt.workers
        lengths = tuple(len(s) for s in series_t)
        chunks = _resolve_chunks(
            task_list, effective, rt.chunksize,
            distance_pair_cost(
                lengths, spec.measure, window=spec.window,
                band=spec.band, radius=spec.radius,
            ),
        )
        if exe is not None:
            chunk_results = exe.run_job(
                "distance", spec, series_t, chunks,
                traced=trace is not None,
            )
        else:
            chunk_results = _fan_out(
                chunks, rt.workers,
                _init_distance_worker,
                (series_t, spec, trace is not None),
                _run_distance_chunk, start_method,
            )
        outcomes = [item for part, _, _ in chunk_results for item in part]
        stats = CacheStats()
        for _, delta, snapshot in chunk_results:
            stats = stats + delta
            if trace is not None and snapshot is not None:
                trace.merge(snapshot)
        effective_workers = effective

    if trace is not None:
        _record_cache_stats(trace, stats)
    distances = tuple(d for d, _, _ in outcomes)
    cells_per_pair = tuple(c for _, c, _ in outcomes)
    return BatchResult(
        pairs=tuple(task_list),
        distances=distances,
        cells_per_pair=cells_per_pair,
        cells=sum(cells_per_pair),
        measure=measure,
        workers=effective_workers,
        cache=stats,
        paths=tuple(p for _, _, p in outcomes) if return_paths else None,
    )


def batch_lb_keogh(
    series: Sequence[Sequence[float]],
    pairs: Optional[Iterable[Pair]] = None,
    band: int = 0,
    squared: bool = True,
    workers: Optional[int] = None,
    chunksize=None,
    start_method: Optional[str] = None,
    backend: Optional[str] = None,
    executor=None,
    runtime: Optional[Runtime] = None,
) -> BatchResult:
    """LB_Keogh lower bounds for many ``(query, candidate)`` pairs.

    For each pair ``(i, j)`` the bound uses the envelope of series
    ``i`` against the values of series ``j``; envelopes are memoized
    per worker, so a series appearing in many pairs pays for its
    envelope once per batch -- the amortization that makes
    lower-bounding profitable in repeated-use workloads.

    ``backend="numpy"`` scores each chunk with the batched kernel
    (one call per query/length group).  Its bounds may differ from
    the scalar ones in final ulps -- they are bounds, not distances,
    and both are valid -- but are identical for every worker count.

    ``executor=`` accepts a
    :class:`repro.batch.executor.BatchExecutor` (or ``"default"``)
    exactly as in :func:`batch_distances`; a warm executor serves
    repeated LB batches over one dataset from resident shared memory
    with per-worker envelopes already built.  ``runtime=`` supplies
    the base execution context exactly as in :func:`batch_distances`
    (the per-call knobs override its fields).

    Returns a :class:`BatchResult` whose distances are the bounds
    (``cells`` is 0: no DP lattice is touched).
    """
    rt = Runtime.resolve(
        runtime, workers=workers, backend=backend, executor=executor,
        chunksize=chunksize,
    )
    if band < 0:
        raise ValueError("band must be non-negative")
    if not series:
        raise ValueError("need at least one series")
    lb_backend = rt.backend_name
    task_list = _validated_pairs(pairs, len(series))
    series_t = tuple(tuple(float(v) for v in s) for s in series)
    trace = _obs.active_trace()
    if trace is not None:
        trace.incr("batch.jobs")
        trace.incr("batch.pairs", len(task_list))

    if not rt.parallel or len(task_list) == 0:
        context = _WorkerContext(
            series_t, lb_band=band, lb_squared=squared,
            lb_backend=lb_backend,
        )
        if lb_backend == "numpy" and task_list:
            bounds = _compute_lb_chunk_vectorized(context, task_list)
        else:
            bounds = [_compute_lb(context, i, j) for i, j in task_list]
        stats = context.cache.stats()
        effective_workers = 1
    else:
        from .schedule import lb_pair_cost

        exe = rt.resolved_executor()
        effective = exe.workers if exe is not None else rt.workers
        lengths = tuple(len(s) for s in series_t)
        chunks = _resolve_chunks(
            task_list, effective, rt.chunksize, lb_pair_cost(lengths),
        )
        if exe is not None:
            chunk_results = exe.run_job(
                "lb", (band, squared, lb_backend), series_t, chunks,
                traced=trace is not None,
            )
        else:
            chunk_results = _fan_out(
                chunks, rt.workers,
                _init_lb_worker,
                (series_t, band, squared, lb_backend, trace is not None),
                _run_lb_chunk, start_method,
            )
        bounds = [item for part, _, _ in chunk_results for item in part]
        stats = CacheStats()
        for _, delta, snapshot in chunk_results:
            stats = stats + delta
            if trace is not None and snapshot is not None:
                trace.merge(snapshot)
        effective_workers = effective

    if trace is not None:
        _record_cache_stats(trace, stats)
    zeros = tuple(0 for _ in bounds)
    return BatchResult(
        pairs=tuple(task_list),
        distances=tuple(bounds),
        cells_per_pair=zeros,
        cells=0,
        measure="lb_keogh",
        workers=effective_workers,
        cache=stats,
    )
