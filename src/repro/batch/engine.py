"""The parallel batch distance engine.

Every headline experiment in the paper -- the Fig. 1/4 timing sweeps,
the 1-NN and clustering tables -- is a *repeated-use* workload:
thousands of independent pairwise distance calls over one series set.
This module executes such a batch as a first-class job:

* work arrives as index **pairs** into a shared series list, so each
  series is shipped to each worker once, not once per pair;
* pairs are **chunked** and fanned out over a ``multiprocessing`` pool
  (``workers=1``, the default, runs in-process with zero pool
  overhead and is the exact serial computation);
* each worker holds a :class:`~repro.batch.cache.SeriesCache`, so
  per-series artefacts (z-normalised copies, LB_Keogh envelopes) are
  computed once per series per worker, not once per pair;
* results come back in **input pair order** regardless of worker
  count or completion order -- determinism is a contract, enforced by
  the property suite in ``tests/batch/``;
* per-pair DP cell counts are preserved and summed into the same
  ``cells`` provenance the serial code paths report.

The serial and parallel paths run byte-identical per-pair
computations (same :func:`repro.core.measures.measure_fn` dispatch),
so distances and cell totals agree exactly -- not merely to within
floating-point noise.

``backend="numpy"`` routes the exact DP measures through the
vectorised kernels of :mod:`repro.core.kernels`; distance-only
dtw/cdtw batches additionally collapse each chunk into stacked
:func:`~repro.core.kernels.KernelSet.dtw_chunk` calls -- the chunk is
split into shape-homogeneous :class:`~repro.batch.schedule.ChunkGroup`
slices keyed by ``(n, m, band)``, each group's pairs are stacked into
one 3-D wavefront evaluation, and the chunk plan drops to one chunk
per worker (the stacked kernel amortises its per-step dispatch over
the whole chunk, so fewest-and-biggest wins).  LB_Keogh batches on
the numpy backend score each chunk the same way via
:func:`~repro.core.kernels.KernelSet.lb_keogh_chunk`.  Distances,
cells and bounds remain bit-identical to the pure engine for every
worker count -- the equivalence suite runs the same property tests
over both backends.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.cost import CostLike
from ..core.measures import (
    MEASURES,
    ND_MEASURES,
    RLE_MEASURES,
    measure_fn,
    split_result,
)
from ..lowerbounds.lb_keogh import lb_keogh
from ..obs import trace as _obs
from ..runtime import Runtime
from .cache import CacheStats, SeriesCache

Pair = Tuple[int, int]


@dataclass(frozen=True)
class BatchSpec:
    """Immutable description of one batch's distance configuration.

    The spec (not a callable) is what crosses the process boundary:
    each pool worker rebuilds its dispatch function from it, so no
    closures need pickling.
    """

    measure: str = "cdtw"
    window: Optional[float] = None
    band: Optional[int] = None
    radius: int = 1
    cost: CostLike = "squared"
    normalize: bool = False
    return_paths: bool = False
    backend: str = "python"

    def __post_init__(self) -> None:
        if self.measure not in MEASURES:
            raise ValueError(
                f"unknown measure {self.measure!r}; pick from {MEASURES}"
            )
        from ..core.kernels import resolve_backend

        resolve_backend(self.backend)

    def make_fn(self):
        """The pairwise callable this spec describes."""
        return measure_fn(
            self.measure,
            window=self.window,
            band=self.band,
            radius=self.radius,
            cost=self.cost,
            return_path=self.return_paths,
            backend=self.backend,
        )

    def vectorizable(self) -> bool:
        """Can whole chunks collapse into stacked kernel calls?

        True for distance-only dtw/cdtw batches on the numpy backend
        with a named cost -- the configurations where
        :func:`repro.core.numpy_backend.dtw_numpy_batch` applies.
        The dependent multivariate measures (``dtw_d``/``cdtw_d``) run
        one DP per pair over vector samples, so they stack the same
        way (via ``dtw_nd_chunk``); the independent measures are sums
        of per-channel scalar DPs and stay on the per-pair path.
        """
        return (
            self.backend == "numpy"
            and self.measure in ("dtw", "cdtw", "dtw_d", "cdtw_d")
            and not self.return_paths
            and isinstance(self.cost, str)
        )


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batch run, ordered like the input pairs.

    Attributes
    ----------
    pairs:
        The index pairs computed, in input order.
    distances:
        ``distances[t]`` is the distance of ``pairs[t]``.
    cells_per_pair:
        DP cells evaluated for each pair (0 for Euclidean).
    cells:
        Sum of ``cells_per_pair`` -- the same provenance number the
        serial code paths report.
    paths:
        Warping paths per pair when the spec asked for them
        (``None`` otherwise; Euclidean pairs yield ``None`` entries).
    measure:
        The measure name that produced the batch.
    workers:
        Worker processes used (1 = in-process serial).
    cache:
        Aggregated :class:`CacheStats` over all workers.
    """

    pairs: Tuple[Pair, ...]
    distances: Tuple[float, ...]
    cells_per_pair: Tuple[int, ...]
    cells: int
    measure: str
    workers: int
    cache: CacheStats
    paths: Optional[Tuple[object, ...]] = None

    def __len__(self) -> int:
        return len(self.pairs)


def all_pairs(k: int) -> List[Pair]:
    """The ``k * (k - 1) / 2`` unordered pairs, lexicographic.

    >>> all_pairs(3)
    [(0, 1), (0, 2), (1, 2)]
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    return list(itertools.combinations(range(k), 2))


def default_chunksize(n_tasks: int, workers: int) -> int:
    """The legacy pair-count heuristic: ~4 chunks per worker.

    Large enough to amortise IPC per pair, small enough that a slow
    chunk cannot leave workers idle for long -- but blind to how much
    each pair actually costs, which is why ``chunksize="auto"`` (the
    default) now plans by predicted DP cells instead
    (:mod:`repro.batch.schedule`).  Reachable via
    ``chunksize="legacy"``; for uniform-length single-measure batches
    the two plans coincide.

    >>> default_chunksize(100, 4)
    7
    >>> default_chunksize(3, 8)
    1
    """
    if n_tasks < 0 or workers < 1:
        raise ValueError("need n_tasks >= 0 and workers >= 1")
    return max(1, math.ceil(n_tasks / (workers * 4)))


def argmin_first(values: Sequence[float]) -> Tuple[int, float]:
    """Index and value of the minimum, first index winning ties.

    This is the tie-breaking rule every serial scan in the package
    uses (``if d < best`` with ascending iteration), restated once so
    the batched paths provably match it.

    >>> argmin_first([3.0, 1.0, 1.0, 2.0])
    (1, 1.0)
    """
    if not values:
        raise ValueError("argmin of an empty sequence")
    best_idx, best = 0, values[0]
    for i in range(1, len(values)):
        if values[i] < best:
            best, best_idx = values[i], i
    return best_idx, best


# -- worker-side machinery ------------------------------------------------
#
# Pool workers cannot receive closures, so each worker rebuilds its
# context (series cache + dispatch callable) from picklable pieces in
# the pool initializer and parks it in a module global.

class _WorkerContext:
    __slots__ = (
        "cache", "spec", "fn", "vectorize", "lb_band", "lb_squared",
        "lb_backend", "traced", "arrays", "_np",
    )

    def __init__(self, series, spec=None, lb_band=None, lb_squared=True,
                 lb_backend="python", traced=False, arrays=None):
        self.cache = SeriesCache(series)
        self.spec = spec
        self.fn = spec.make_fn() if spec is not None else None
        self.vectorize = spec.vectorizable() if spec is not None else False
        self.lb_band = lb_band
        self.lb_squared = lb_squared
        self.lb_backend = lb_backend
        self.traced = traced
        # optional zero-copy float64 views of the series (the shm
        # executor's datasets are already packed), seeding the numpy
        # artefact cache without a per-series conversion
        self.arrays = arrays
        self._np = None

    def np_artifacts(self) -> "_NpArtifacts":
        if self._np is None:
            self._np = _NpArtifacts(self)
        return self._np


class _NpArtifacts:
    """Per-context caches feeding the stacked chunk kernels.

    Everything the old vectorised path paid *per pair in Python* --
    finiteness validation, tuple-to-array conversion, stacking -- is
    memoized here per *series* per context, which is what lets warm
    numpy workers beat the serial numpy path instead of losing to it:

    * :meth:`series` -- the validated float64 array of one series,
      built once (zero-copy when the executor shipped shm views);
    * :meth:`envelope` -- array views of a cached
      :class:`~repro.lowerbounds.envelope.Envelope` (the
      :class:`SeriesCache` keeps its hit/miss accounting);
    * :meth:`stack` -- pairs gathered into reusable scratch stacks
      whose capacity grows in powers of two.  Rows past the real pair
      count are *padding*: initialised to NaN on purpose, so the
      chunk kernels' ``count=`` contract (padding is never read) is
      exercised on every production call, not only in tests.
    """

    __slots__ = ("_ctx", "_series", "_env", "_scratch")

    def __init__(self, ctx: _WorkerContext):
        self._ctx = ctx
        self._series: dict = {}
        self._env: dict = {}
        self._scratch: dict = {}

    def series(self, i: int):
        arr = self._series.get(i)
        if arr is None:
            from ..core.numpy_backend import _as_series, _as_series_nd

            ctx = self._ctx
            if ctx.spec is not None and ctx.spec.normalize:
                raw = ctx.cache.normalized(i)
            elif ctx.arrays is not None:
                raw = ctx.arrays[i]
            else:
                raw = ctx.cache.raw(i)
            convert = (
                _as_series if ctx.cache.dims is None else _as_series_nd
            )
            arr = self._series[i] = convert(raw, str(i))
        return arr

    def envelope(self, i: int, band: int):
        # the SeriesCache call stays per request, so envelope hit/miss
        # accounting is identical to the per-pair path; only the
        # list-to-array conversion is memoized on top
        env = self._ctx.cache.envelope(i, band)
        pair = self._env.get((i, band))
        if pair is None:
            import numpy as np

            pair = self._env[i, band] = (
                np.asarray(env.upper, dtype=np.float64),
                np.asarray(env.lower, dtype=np.float64),
            )
        return pair

    def _scratch_for(self, role: str, shape, rows: int):
        import numpy as np

        key = (role,) + tuple(shape)
        buf = self._scratch.get(key)
        if buf is None or buf.shape[0] < rows:
            cap = 1 << max(0, rows - 1).bit_length()
            buf = self._scratch[key] = np.full(
                (cap,) + tuple(shape), np.nan, dtype=np.float64
            )
        return buf

    def stack_rows(self, role: str, indices, width: int):
        """Gather ``series(idx)`` rows into a padded scratch stack.

        Returns ``(stack, pad_rows)``: only the first ``len(indices)``
        rows are real; the rest is the poisoned padding the chunk
        kernels must never read.  Multivariate contexts stack
        ``(count, width, dims)`` instead of ``(count, width)``.
        """
        dims = self._ctx.cache.dims
        shape = (width,) if dims is None else (width, dims)
        buf = self._scratch_for(role, shape, len(indices))
        for t, idx in enumerate(indices):
            buf[t, ...] = self.series(idx)
        return buf, buf.shape[0] - len(indices)

    def stack_pairs(self, pairs, n: int, m: int):
        """Both sides of a shape-homogeneous pair group, stacked.

        Returns ``(xs, ys, pad_rows)`` with equal padded heights (the
        two scratch buffers may have grown to different capacities, so
        both are clipped to the smaller one -- still >= the group).
        """
        xs, _ = self.stack_rows("x", [i for i, _ in pairs], n)
        ys, _ = self.stack_rows("y", [j for _, j in pairs], m)
        padded = min(xs.shape[0], ys.shape[0])
        return xs[:padded], ys[:padded], padded - len(pairs)


_CONTEXT: Optional[_WorkerContext] = None


def _init_distance_worker(series, spec, traced=False):
    global _CONTEXT
    # a forked worker inherits the parent's active RunTrace object; it
    # must never record into that copy (the parent merges snapshots
    # instead), so the observability state is always cleared here
    _obs.reset()
    _CONTEXT = _WorkerContext(series, spec=spec, traced=traced)


def _init_lb_worker(series, band, squared, backend, traced=False):
    global _CONTEXT
    _obs.reset()
    _CONTEXT = _WorkerContext(
        series, lb_band=band, lb_squared=squared, lb_backend=backend,
        traced=traced,
    )


def _compute_pair(ctx: _WorkerContext, i: int, j: int):
    if ctx.spec.normalize:
        x, y = ctx.cache.normalized(i), ctx.cache.normalized(j)
    else:
        x, y = ctx.cache.raw(i), ctx.cache.raw(j)
    return split_result(ctx.fn(x, y))


def _spec_window(spec: BatchSpec, n: int, m: int):
    from ..core.kernels import banded_window, fraction_window, full_window

    if spec.measure in ("dtw", "dtw_d"):
        return full_window(n, m)
    if (spec.window is None) == (spec.band is None):
        raise ValueError("specify exactly one of window= or band=")
    if spec.window is not None:
        return fraction_window(n, m, spec.window)
    return banded_window(n, m, spec.band)


def _compute_chunk_vectorized(ctx: _WorkerContext, chunk: Sequence[Pair]):
    """One ``dtw_chunk`` kernel call per shape group in the chunk.

    Per-pair results are bit-identical to :func:`_compute_pair` under
    the same spec (the wavefront kernel evaluates the same DP lattice
    in an order-independent schedule), so reassembling in input order
    preserves the engine's determinism contract.

    The chunk path pays no per-pair Python: series are validated and
    converted once per context (:class:`_NpArtifacts`), pairs gather
    into reusable padded scratch stacks, and
    :meth:`KernelSet.dtw_chunk <repro.core.kernels.KernelSet>`
    charges the ``dp.*`` counters exactly like the per-pair hooks.
    """
    from ..core.kernels import get_kernels
    from .schedule import chunk_band, group_chunk

    spec = ctx.spec
    kernels = get_kernels(spec.backend)
    arts = ctx.np_artifacts()
    lengths = [len(ctx.cache.raw(i)) for i in range(len(ctx.cache))]
    groups = group_chunk(
        chunk, lengths,
        band_for=chunk_band(spec.measure, spec.window, spec.band),
    )
    _obs.incr("chunk.groups", len(groups))
    chunk_kernel = (
        kernels.dtw_chunk if ctx.cache.dims is None
        else kernels.dtw_nd_chunk
    )
    out = [None] * len(chunk)
    for group in groups:
        win = _spec_window(spec, group.n, group.m)
        cells = win.cell_count()
        xs, ys, pad = arts.stack_pairs(group.pairs, group.n, group.m)
        distances = chunk_kernel(
            xs, ys, win, cost=spec.cost, count=len(group.pairs)
        )
        _obs.incr("chunk.calls")
        _obs.incr("chunk.pairs", len(group.pairs))
        _obs.incr("chunk.pad_rows", pad)
        for pos, d in zip(group.positions, distances):
            out[pos] = (float(d), cells, None)
    return out


def _distance_chunk_outputs(ctx: _WorkerContext, chunk: Sequence[Pair]):
    """Run one distance chunk against an explicit context.

    Shared by the one-shot pool path (context parked in the module
    global by the initializer) and the persistent executor (contexts
    cached per dataset fingerprint) -- the per-pair computation is one
    code path regardless of how the context got there.
    """
    before = ctx.cache.stats()
    if ctx.traced:
        with _obs.RunTrace(label="batch-worker") as wtrace:
            wtrace.incr("pool.chunks")
            if ctx.vectorize:
                out = _compute_chunk_vectorized(ctx, chunk)
            else:
                out = [_compute_pair(ctx, i, j) for i, j in chunk]
        return out, ctx.cache.stats() - before, wtrace.snapshot()
    if ctx.vectorize:
        out = _compute_chunk_vectorized(ctx, chunk)
    else:
        out = [_compute_pair(ctx, i, j) for i, j in chunk]
    return out, ctx.cache.stats() - before, None


def _run_distance_chunk(chunk: Sequence[Pair]):
    return _distance_chunk_outputs(_CONTEXT, chunk)


def _compute_lb(ctx: _WorkerContext, i: int, j: int) -> float:
    env = ctx.cache.envelope(i, ctx.lb_band)
    _obs.incr("lb.invocations")
    return lb_keogh(env, ctx.cache.raw(j), squared=ctx.lb_squared)


def _compute_lb_chunk_vectorized(ctx: _WorkerContext, chunk: Sequence[Pair]):
    """Chunked LB_Keogh: one ``lb_keogh_chunk`` call per
    (query, length) group.

    The chunk kernel folds each candidate row with a sequential
    cumulative sum, so every bound is bit-identical to the scalar
    :func:`repro.lowerbounds.lb_keogh.lb_keogh` -- the python and
    numpy backends now agree exactly, for every worker count.
    """
    from ..core.kernels import get_kernels

    kernels = get_kernels("numpy")
    arts = ctx.np_artifacts()
    _obs.incr("lb.invocations", len(chunk))
    groups: dict = {}
    for t, (i, j) in enumerate(chunk):
        length = len(ctx.cache.raw(j))
        groups.setdefault((i, length), []).append((t, j))
    _obs.incr("chunk.groups", len(groups))
    out = [0.0] * len(chunk)
    for (i, length), items in groups.items():
        upper, lower = arts.envelope(i, ctx.lb_band)
        stack, pad = arts.stack_rows(
            "lb", [j for _, j in items], length
        )
        bounds = kernels.lb_keogh_chunk(
            upper, lower, stack, squared=ctx.lb_squared,
            count=len(items),
        )
        _obs.incr("chunk.calls")
        _obs.incr("chunk.pairs", len(items))
        _obs.incr("chunk.pad_rows", pad)
        for (t, _), b in zip(items, bounds.tolist()):
            out[t] = b
    return out


def _lb_chunk_outputs(ctx: _WorkerContext, chunk: Sequence[Pair]):
    """Run one LB_Keogh chunk against an explicit context (see
    :func:`_distance_chunk_outputs`)."""
    before = ctx.cache.stats()
    if ctx.traced:
        with _obs.RunTrace(label="batch-worker") as wtrace:
            wtrace.incr("pool.chunks")
            if ctx.lb_backend == "numpy":
                out = _compute_lb_chunk_vectorized(ctx, chunk)
            else:
                out = [_compute_lb(ctx, i, j) for i, j in chunk]
        return out, ctx.cache.stats() - before, wtrace.snapshot()
    if ctx.lb_backend == "numpy":
        out = _compute_lb_chunk_vectorized(ctx, chunk)
    else:
        out = [_compute_lb(ctx, i, j) for i, j in chunk]
    return out, ctx.cache.stats() - before, None


def _run_lb_chunk(chunk: Sequence[Pair]):
    return _lb_chunk_outputs(_CONTEXT, chunk)


def _record_cache_stats(trace, stats: CacheStats) -> None:
    """Mirror a job's aggregated :class:`CacheStats` into a trace."""
    trace.incr("cache.envelope_hits", stats.envelope_hits)
    trace.incr("cache.envelope_misses", stats.envelope_misses)
    trace.incr("cache.znorm_hits", stats.znorm_hits)
    trace.incr("cache.znorm_misses", stats.znorm_misses)


def chunk_probe(fn):
    """Run ``fn()`` under a private trace; summarise its chunk path.

    Returns ``(value, stats)`` where ``stats`` reports how the stacked
    chunk kernels executed: scheduled chunks, kernel calls, shape
    groups, real pairs stacked, pad rows and the pad-waste fraction.
    Lives here (not in the benchmark) so callers in ``repro.timing``
    never have to name the obs hooks -- the harness-pin source scan
    forbids them there.
    """
    from ..obs import RunTrace

    with RunTrace() as trace:
        value = fn()
    stacked = trace.counter("chunk.pairs")
    pad = trace.counter("chunk.pad_rows")
    return value, {
        "sched_chunks": trace.counter("pool.chunks"),
        "kernel_calls": trace.counter("chunk.calls"),
        "groups": trace.counter("chunk.groups"),
        "stacked_pairs": stacked,
        "pad_rows": pad,
        "pad_waste_fraction": (
            pad / (stacked + pad) if stacked + pad else 0.0
        ),
    }


def _pick_context(start_method: Optional[str]):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    # fork is far cheaper per pool and inherits the parent's modules;
    # platforms without it (e.g. Windows) fall back to spawn.
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _canonical_series(series):
    """Materialise the input series once, detecting dimensionality.

    Returns ``(series_t, dims)``: scalar datasets canonicalise to
    tuples of floats (``dims is None``, byte-identical to the historic
    form), multivariate ``(length, dims)`` datasets to tuples of
    float tuples.  Mixed or ragged-dims datasets are rejected by
    :func:`repro.batch.shm.dataset_dims` before any arithmetic runs.
    """
    from .shm import dataset_dims

    dims = dataset_dims(series)
    if dims is None:
        return tuple(tuple(float(v) for v in s) for s in series), None
    return tuple(
        tuple(tuple(float(c) for c in v) for v in s) for s in series
    ), dims


def _check_measure_dims(measure: str, dims: Optional[int]) -> None:
    if dims is not None and measure not in ND_MEASURES:
        raise ValueError(
            f"measure {measure!r} is univariate; multivariate "
            f"(length, dims) series need one of {ND_MEASURES}"
        )
    if dims is None and measure in ND_MEASURES:
        raise ValueError(
            f"measure {measure!r} is multivariate; flat scalar series "
            "need a scalar measure (reshape to (length, 1) samples to "
            "force the multivariate path)"
        )


def _validated_pairs(
    pairs: Optional[Iterable[Pair]], k: int
) -> List[Pair]:
    if pairs is None:
        return all_pairs(k)
    out: List[Pair] = []
    for pair in pairs:
        i, j = pair
        if not (0 <= i < k and 0 <= j < k):
            raise ValueError(
                f"pair ({i}, {j}) out of range for {k} series"
            )
        out.append((i, j))
    return out


def _fan_out(
    chunks, workers, initializer, initargs, chunk_runner, start_method,
):
    """One-shot pool: fork, map the chunks, tear down.

    The series set rides in ``initargs`` (pickled once per worker per
    call -- the cold cost that :class:`repro.batch.executor.
    BatchExecutor` exists to amortise away).
    """
    ctx = _pick_context(start_method)
    with ctx.Pool(
        processes=workers, initializer=initializer, initargs=initargs
    ) as pool:
        # pool.map preserves submission order, so reassembly is a
        # flatten -- determinism does not depend on worker scheduling.
        return pool.map(chunk_runner, chunks)


def _resolve_chunks(task_list, workers, chunksize, cost_fn,
                    oversubscribe=None):
    """Turn a ``chunksize=`` argument into the actual chunk plan.

    ``None``/``"auto"`` route through the cell-cost model
    (:func:`repro.batch.schedule.plan_chunks`): chunks of ~equal
    predicted DP cost, so long-series pairs get small chunks and
    cheap ones aggregate.  ``"legacy"`` keeps the original blind
    "~4 chunks per worker" pair-count heuristic
    (:func:`default_chunksize`) reachable; an ``int`` fixes the pair
    count per chunk exactly.  Every option flattens back to the input
    pair order, so the plan never affects results -- only balance.

    ``oversubscribe`` overrides the auto plan's chunks-per-worker
    target.  The stacked chunk kernels amortise their per-wavefront
    dispatch over every pair in the chunk, so the vectorised path
    asks for ``1`` -- the fewest, biggest chunks -- where the
    per-pair paths keep several chunks per worker for dynamic
    balance.
    """
    if chunksize is None or chunksize == "auto":
        from .schedule import OVERSUBSCRIBE, plan_chunks

        return plan_chunks(
            task_list, cost_fn, workers,
            oversubscribe=(
                OVERSUBSCRIBE if oversubscribe is None else oversubscribe
            ),
        )
    if chunksize == "legacy":
        size = default_chunksize(len(task_list), workers)
    elif isinstance(chunksize, int):
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        size = chunksize
    else:
        raise ValueError(
            "chunksize must be an int >= 1, 'auto', 'legacy' or None, "
            f"got {chunksize!r}"
        )
    return [
        task_list[k:k + size] for k in range(0, len(task_list), size)
    ]


def batch_distances(
    series: Sequence[Sequence[float]],
    pairs: Optional[Iterable[Pair]] = None,
    measure: str = "cdtw",
    window: Optional[float] = None,
    band: Optional[int] = None,
    radius: int = 1,
    cost: CostLike = "squared",
    normalize: bool = False,
    return_paths: bool = False,
    workers: Optional[int] = None,
    chunksize=None,
    start_method: Optional[str] = None,
    backend: Optional[str] = None,
    executor=None,
    runtime: Optional[Runtime] = None,
) -> BatchResult:
    """Compute many independent pairwise distances as one batch.

    Parameters
    ----------
    series:
        The shared series set; tasks index into it.
    pairs:
        Index pairs to compute, in the order results should come back
        (default: all unordered pairs ``i < j``).
    measure, window, band, radius, cost:
        Distance configuration, exactly as in
        :func:`repro.core.matrix.distance_matrix`.
    normalize:
        Z-normalise each series (once per series per worker, via the
        cache) before measuring.
    return_paths:
        Also return warping paths (exact measures recover them;
        Euclidean entries are ``None``).
    workers, chunksize, backend, executor:
        Per-call overrides of the corresponding
        :class:`repro.runtime.Runtime` fields.  The engine *is* the
        execution layer, so these remain its native vocabulary (no
        deprecation here, unlike the consumer entry points); ``None``
        means "defer to ``runtime=`` / the process default".
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else ``spawn``).  Ignored when an executor is in
        play (the executor owns its pool).
    runtime:
        The base execution context (see :mod:`repro.runtime`).
        ``None`` uses the process default
        (:func:`repro.runtime.default_runtime`); the built-in default
        is the in-process serial pure-python computation.

    Returns
    -------
    BatchResult
        Distances/cells in input pair order; identical values for any
        worker count -- the serial-equivalence suite enforces this.
    """
    rt = Runtime.resolve(
        runtime, workers=workers, backend=backend, executor=executor,
        chunksize=chunksize,
    )
    if not series:
        raise ValueError("need at least one series")
    spec = BatchSpec(
        measure=measure, window=window, band=band, radius=radius,
        cost=cost, normalize=normalize, return_paths=return_paths,
        backend=rt.backend_name,
    )
    task_list = _validated_pairs(pairs, len(series))
    series_t, dims = _canonical_series(series)
    _check_measure_dims(spec.measure, dims)
    trace = _obs.active_trace()
    if trace is not None:
        trace.incr("batch.jobs")
        trace.incr("batch.pairs", len(task_list))

    if not rt.parallel or len(task_list) == 0:
        # in-process: the per-pair hooks report straight into the
        # parent's active trace, no snapshot round-trip needed
        context = _WorkerContext(series_t, spec=spec)
        if context.vectorize and task_list:
            outcomes = _compute_chunk_vectorized(context, task_list)
        else:
            outcomes = [
                _compute_pair(context, i, j) for i, j in task_list
            ]
        stats = context.cache.stats()
        effective_workers = 1
    else:
        from .schedule import distance_pair_cost

        exe = rt.resolved_executor()
        effective = exe.workers if exe is not None else rt.workers
        lengths = tuple(len(s) for s in series_t)
        run_counts = None
        if spec.measure in RLE_MEASURES:
            # the k*m + l*n cost model needs each series' run count;
            # one O(n) encoding pass per series prices the whole plan
            from ..core.rle import RleSeries

            run_counts = tuple(
                RleSeries.encode(s).run_count for s in series_t
            )
        chunks = _resolve_chunks(
            task_list, effective, rt.chunksize,
            distance_pair_cost(
                lengths, spec.measure, window=spec.window,
                band=spec.band, radius=spec.radius,
                run_counts=run_counts,
                dims=1 if dims is None else dims,
            ),
            # the stacked chunk kernels amortise their per-wavefront
            # Python dispatch over every pair in the chunk, so the
            # vectorised path wants the fewest, biggest chunks -- one
            # per worker -- where per-pair dispatch prefers several
            # for dynamic balance
            oversubscribe=1 if spec.vectorizable() else None,
        )
        if exe is not None:
            chunk_results = exe.run_job(
                "distance", spec, series_t, chunks,
                traced=trace is not None,
            )
        else:
            chunk_results = _fan_out(
                chunks, rt.workers,
                _init_distance_worker,
                (series_t, spec, trace is not None),
                _run_distance_chunk, start_method,
            )
        outcomes = [item for part, _, _ in chunk_results for item in part]
        stats = CacheStats()
        for _, delta, snapshot in chunk_results:
            stats = stats + delta
            if trace is not None and snapshot is not None:
                trace.merge(snapshot)
        effective_workers = effective

    if trace is not None:
        _record_cache_stats(trace, stats)
    distances = tuple(d for d, _, _ in outcomes)
    cells_per_pair = tuple(c for _, c, _ in outcomes)
    return BatchResult(
        pairs=tuple(task_list),
        distances=distances,
        cells_per_pair=cells_per_pair,
        cells=sum(cells_per_pair),
        measure=measure,
        workers=effective_workers,
        cache=stats,
        paths=tuple(p for _, _, p in outcomes) if return_paths else None,
    )


def batch_lb_keogh(
    series: Sequence[Sequence[float]],
    pairs: Optional[Iterable[Pair]] = None,
    band: int = 0,
    squared: bool = True,
    workers: Optional[int] = None,
    chunksize=None,
    start_method: Optional[str] = None,
    backend: Optional[str] = None,
    executor=None,
    runtime: Optional[Runtime] = None,
) -> BatchResult:
    """LB_Keogh lower bounds for many ``(query, candidate)`` pairs.

    For each pair ``(i, j)`` the bound uses the envelope of series
    ``i`` against the values of series ``j``; envelopes are memoized
    per worker, so a series appearing in many pairs pays for its
    envelope once per batch -- the amortization that makes
    lower-bounding profitable in repeated-use workloads.

    ``backend="numpy"`` scores each chunk with the stacked
    :func:`~repro.core.kernels.KernelSet.lb_keogh_chunk` kernel (one
    call per query/length group).  Its cumulative-sum reduction adds
    gap costs in the scalar order, so the bounds are bit-identical to
    the pure-python path for every worker count.

    ``executor=`` accepts a
    :class:`repro.batch.executor.BatchExecutor` (or ``"default"``)
    exactly as in :func:`batch_distances`; a warm executor serves
    repeated LB batches over one dataset from resident shared memory
    with per-worker envelopes already built.  ``runtime=`` supplies
    the base execution context exactly as in :func:`batch_distances`
    (the per-call knobs override its fields).

    Returns a :class:`BatchResult` whose distances are the bounds
    (``cells`` is 0: no DP lattice is touched).
    """
    rt = Runtime.resolve(
        runtime, workers=workers, backend=backend, executor=executor,
        chunksize=chunksize,
    )
    if band < 0:
        raise ValueError("band must be non-negative")
    if not series:
        raise ValueError("need at least one series")
    lb_backend = rt.backend_name
    task_list = _validated_pairs(pairs, len(series))
    series_t, dims = _canonical_series(series)
    if dims is not None:
        raise ValueError(
            "batch_lb_keogh is univariate; sum the per-channel bounds "
            "of repro.lowerbounds.nd for (length, dims) series"
        )
    trace = _obs.active_trace()
    if trace is not None:
        trace.incr("batch.jobs")
        trace.incr("batch.pairs", len(task_list))

    if not rt.parallel or len(task_list) == 0:
        context = _WorkerContext(
            series_t, lb_band=band, lb_squared=squared,
            lb_backend=lb_backend,
        )
        if lb_backend == "numpy" and task_list:
            bounds = _compute_lb_chunk_vectorized(context, task_list)
        else:
            bounds = [_compute_lb(context, i, j) for i, j in task_list]
        stats = context.cache.stats()
        effective_workers = 1
    else:
        from .schedule import lb_pair_cost

        exe = rt.resolved_executor()
        effective = exe.workers if exe is not None else rt.workers
        lengths = tuple(len(s) for s in series_t)
        chunks = _resolve_chunks(
            task_list, effective, rt.chunksize, lb_pair_cost(lengths),
            oversubscribe=1 if lb_backend == "numpy" else None,
        )
        if exe is not None:
            chunk_results = exe.run_job(
                "lb", (band, squared, lb_backend), series_t, chunks,
                traced=trace is not None,
            )
        else:
            chunk_results = _fan_out(
                chunks, rt.workers,
                _init_lb_worker,
                (series_t, band, squared, lb_backend, trace is not None),
                _run_lb_chunk, start_method,
            )
        bounds = [item for part, _, _ in chunk_results for item in part]
        stats = CacheStats()
        for _, delta, snapshot in chunk_results:
            stats = stats + delta
            if trace is not None and snapshot is not None:
                trace.merge(snapshot)
        effective_workers = effective

    if trace is not None:
        _record_cache_stats(trace, stats)
    zeros = tuple(0 for _ in bounds)
    return BatchResult(
        pairs=tuple(task_list),
        distances=tuple(bounds),
        cells_per_pair=zeros,
        cells=0,
        measure="lb_keogh",
        workers=effective_workers,
        cache=stats,
    )
