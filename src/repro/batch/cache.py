"""Per-worker memoization of per-series derived artefacts.

A batch over ``k`` series touches each series in up to ``k - 1``
pairs, but its derived artefacts -- the z-normalised copy, the
LB_Keogh warping envelope at a given band -- depend only on the series
itself.  Computing them per *pair* wastes a factor of ``k``; Lemire's
two-pass lower-bound work (see PAPERS.md) hinges on exactly this
amortization.  :class:`SeriesCache` memoizes both per series index, so
each worker process of the batch engine pays for each artefact once
per batch, not once per pair.

The cache is deliberately process-local: it is built inside each pool
worker by the engine's initializer and never crosses a process
boundary (only its hit/miss *deltas* are shipped back for the merged
:class:`CacheStats` accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..lowerbounds.envelope import Envelope, envelope
from ..preprocess.normalize import znorm


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters for one cache (or an aggregate of many).

    Hits are requests served from memory; misses are requests that had
    to compute the artefact.  ``misses`` therefore counts the actual
    O(n) work done; ``hits`` counts the work the cache saved.
    """

    envelope_hits: int = 0
    envelope_misses: int = 0
    znorm_hits: int = 0
    znorm_misses: int = 0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.envelope_hits + other.envelope_hits,
            self.envelope_misses + other.envelope_misses,
            self.znorm_hits + other.znorm_hits,
            self.znorm_misses + other.znorm_misses,
        )

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.envelope_hits - other.envelope_hits,
            self.envelope_misses - other.envelope_misses,
            self.znorm_hits - other.znorm_hits,
            self.znorm_misses - other.znorm_misses,
        )


class SeriesCache:
    """Memoized per-series artefacts over one fixed series set.

    Parameters
    ----------
    series:
        The batch's series, indexed 0..k-1.  Values are materialised
        as float lists once, up front.
    """

    def __init__(self, series: Sequence[Sequence[float]]):
        if not series:
            raise ValueError("need at least one series")
        from .shm import dataset_dims

        self.dims = dataset_dims(series)
        if self.dims is None:
            self._series: List[List[float]] = [
                [float(v) for v in s] for s in series
            ]
        else:
            self._series = [
                [tuple(float(c) for c in v) for v in s] for s in series
            ]
        self._znorm: Dict[int, List[float]] = {}
        self._envelopes: Dict[Tuple[int, int], Envelope] = {}
        self._envelope_hits = 0
        self._envelope_misses = 0
        self._znorm_hits = 0
        self._znorm_misses = 0

    def __len__(self) -> int:
        return len(self._series)

    def raw(self, i: int) -> List[float]:
        """Series ``i`` as stored (no normalisation)."""
        return self._series[i]

    def normalized(self, i: int) -> List[float]:
        """Z-normalised copy of series ``i``, computed at most once.

        Multivariate series normalise per channel
        (:func:`repro.preprocess.normalize.znorm_nd`).
        """
        cached = self._znorm.get(i)
        if cached is not None:
            self._znorm_hits += 1
            return cached
        self._znorm_misses += 1
        if self.dims is None:
            out = znorm(self._series[i])
        else:
            from ..preprocess.normalize import znorm_nd

            out = znorm_nd(self._series[i])
        self._znorm[i] = out
        return out

    def envelope(self, i: int, band: int) -> Envelope:
        """LB_Keogh envelope of series ``i``, memoized per band."""
        if self.dims is not None:
            raise ValueError(
                "scalar envelopes are undefined for multivariate "
                "series; use the per-channel envelopes of "
                "repro.lowerbounds.nd instead"
            )
        key = (i, band)
        cached = self._envelopes.get(key)
        if cached is not None:
            self._envelope_hits += 1
            return cached
        self._envelope_misses += 1
        env = envelope(self._series[i], band)
        self._envelopes[key] = env
        return env

    def stats(self) -> CacheStats:
        """Snapshot of the counters so far (see :class:`CacheStats`)."""
        return CacheStats(
            envelope_hits=self._envelope_hits,
            envelope_misses=self._envelope_misses,
            znorm_hits=self._znorm_hits,
            znorm_misses=self._znorm_misses,
        )
