"""Cost-model chunk planning for the batch engine and executor.

The engine's original ``default_chunksize`` heuristic ("~4 chunks per
worker") counts *pairs*, but pairs are not equally priced: one
length-4000 cDTW pair costs as much DP work as hundreds of length-200
pairs.  A fixed pair count per chunk therefore leaves workers idle
behind whichever chunk drew the long series.

This module prices each pair with the same cell models the rest of
the repository already trusts --
:func:`repro.core.cdtw.band_cells` for the exact measures (the
*exact* lattice size the DP will touch, corner clipping included) and
:func:`repro.timing.cells.fastdtw_cell_model` for the approximation
-- and packs pairs greedily into chunks of roughly equal predicted
cost.  Long-series pairs land in small chunks, cheap LB/Euclidean
pairs aggregate into big ones, and the chunk *order still flattens to
the input pair order*, so the engine's deterministic reassembly is
untouched.

For uniform workloads (equal lengths, one measure) the plan
degenerates to the legacy heuristic's shape: ~``OVERSUBSCRIBE``
chunks per worker of equal pair count.  The two only diverge when
costs do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

Pair = Tuple[int, int]

#: Target chunks per worker.  Several chunks per worker keep the
#: dynamic scheduler fed (a slow chunk cannot strand the pool), while
#: staying coarse enough to amortise per-chunk IPC.
OVERSUBSCRIBE = 4

def distance_pair_cost(
    lengths: Sequence[int],
    measure: str,
    window=None,
    band=None,
    radius: int = 1,
    run_counts: Optional[Sequence[int]] = None,
    dims: int = 1,
) -> Callable[[int, int], int]:
    """Per-pair cost function (predicted DP cells) for one spec.

    Delegates to :func:`repro.core.measures.pair_cost_model`, the
    registry beside the measure list itself: every measure has a
    declared price there (exact window geometry for ``dtw``/``cdtw``,
    Salvador & Chan's accounting for the fastdtw measures,
    ``k*m + l*n`` boundary cells for the rle measures via
    ``run_counts``, ``dims x`` the window geometry for the
    multivariate measures), and an unknown measure raises instead of
    silently falling back to a wrong model.

    Costs are memoized per shape, so planning a large batch over
    equal-length series prices one shape once.
    """
    from ..core.measures import pair_cost_model

    return pair_cost_model(
        measure, lengths, window=window, band=band, radius=radius,
        run_counts=run_counts, dims=dims,
    )


def lb_pair_cost(lengths: Sequence[int]) -> Callable[[int, int], int]:
    """Per-pair cost of an LB_Keogh evaluation: linear in the
    candidate length (the envelope is cached per series, so its
    amortised cost per pair rounds to zero)."""

    def cost(i: int, j: int) -> int:
        return max(1, lengths[j])

    return cost


def plan_chunks(
    pairs: Sequence[Pair],
    cost: Callable[[int, int], int],
    workers: int,
    oversubscribe: int = OVERSUBSCRIBE,
) -> List[List[Pair]]:
    """Pack pairs into contiguous chunks of ~equal predicted cost.

    The concatenation of the returned chunks is exactly ``pairs`` --
    scheduling never reorders work, only regroups it, so results
    reassemble by chunk index regardless of completion order.

    Guarantees: every chunk is non-empty; a single pair costing more
    than the target gets a chunk to itself; the chunk count is at
    least ``min(len(pairs), workers * oversubscribe)``-ish for
    uniform costs (matching the legacy heuristic's granularity).

    >>> plan_chunks([(0, 1), (0, 2), (1, 2)], lambda i, j: 10, workers=1,
    ...             oversubscribe=3)
    [[(0, 1)], [(0, 2)], [(1, 2)]]
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if oversubscribe < 1:
        raise ValueError("oversubscribe must be >= 1")
    if not pairs:
        return []
    costs = [cost(i, j) for i, j in pairs]
    total = sum(costs)
    # ceil-divide so the final partial chunk cannot push the count
    # past the target granularity
    target = max(1, -(-total // (workers * oversubscribe)))
    chunks: List[List[Pair]] = []
    current: List[Pair] = []
    acc = 0
    for pair, c in zip(pairs, costs):
        current.append(pair)
        acc += c
        if acc >= target:
            chunks.append(current)
            current, acc = [], 0
    if current:
        chunks.append(current)
    return chunks


@dataclass(frozen=True)
class ChunkGroup:
    """One shape-homogeneous slice of a chunk, ready for a stacked
    kernel call.

    Attributes
    ----------
    n, m:
        The shared series lengths of every pair in the group.
    band:
        The resolved Sakoe-Chiba half-width the spec implies for this
        shape (``None`` for an unconstrained window).  Part of the
        grouping key so that one group always maps to exactly one
        :class:`~repro.core.window.Window`.
    positions:
        For each pair, its index within the *original chunk* --
        results written back as ``out[positions[t]] = result[t]``
        reassemble the chunk's input order exactly, regardless of the
        order groups (or the chunks containing them) complete in.
    pairs:
        The ``(i, j)`` series-index pairs, in chunk order.
    """

    n: int
    m: int
    band: Optional[int]
    positions: Tuple[int, ...]
    pairs: Tuple[Pair, ...]

    def __len__(self) -> int:
        return len(self.pairs)


def chunk_band(
    measure: str,
    window: Optional[float] = None,
    band: Optional[int] = None,
) -> Callable[[int, int], Optional[int]]:
    """The resolved band half-width per pair shape, for grouping.

    Mirrors the geometry rules of the DP entry points exactly:
    ``dtw`` means no constraint (``None``), a fractional ``window``
    resolves to ``ceil(window * max(n, m))`` (the
    :meth:`~repro.core.window.Window.from_fraction` convention), an
    absolute ``band`` is shape-independent.  Two pairs land in the
    same :class:`ChunkGroup` only when this function agrees on them,
    so every group shares one Window.
    """
    if measure in ("dtw", "dtw_d"):
        return lambda n, m: None
    if measure not in ("cdtw", "cdtw_d"):
        raise ValueError(
            f"no banded-window geometry for measure {measure!r}"
        )
    if (window is None) == (band is None):
        raise ValueError("specify exactly one of window= or band=")
    if window is not None:
        frac = window
        return lambda n, m: math.ceil(frac * max(n, m))
    return lambda n, m: band


def group_chunk(
    chunk: Sequence[Pair],
    lengths: Sequence[int],
    band_for: Optional[Callable[[int, int], Optional[int]]] = None,
) -> List[ChunkGroup]:
    """Split one chunk into shape-homogeneous groups for the stacked
    chunk kernels.

    Groups are keyed by ``(n, m, band)`` -- the exact attributes that
    determine a pair's Window -- in first-occurrence order, with pair
    order preserved inside each group.  The groups partition the
    chunk: every pair appears in exactly one group, and the recorded
    ``positions`` make reassembly deterministic under any completion
    order (the ``imap_unordered`` steal property the schedule tests
    pin down).

    ``band_for`` maps a pair shape to its resolved band (see
    :func:`chunk_band`); ``None`` groups purely by shape.
    """
    buckets: Dict[Tuple[int, int, Optional[int]], List[int]] = {}
    for t, (i, j) in enumerate(chunk):
        n, m = lengths[i], lengths[j]
        b = band_for(n, m) if band_for is not None else None
        buckets.setdefault((n, m, b), []).append(t)
    return [
        ChunkGroup(
            n=n, m=m, band=b,
            positions=tuple(ts),
            pairs=tuple(chunk[t] for t in ts),
        )
        for (n, m, b), ts in buckets.items()
    ]


def chunk_cost_summary(
    chunks: Sequence[Sequence[Pair]],
    cost: Callable[[int, int], int],
) -> Dict[str, float]:
    """Balance diagnostics for a plan (used by tests and the bench).

    Returns the per-chunk predicted costs' min/max/mean and the
    imbalance ratio ``max / mean`` (1.0 = perfectly level).
    """
    if not chunks:
        return {"chunks": 0, "min": 0, "max": 0, "mean": 0.0,
                "imbalance": 1.0}
    per_chunk = [
        sum(cost(i, j) for i, j in chunk) for chunk in chunks
    ]
    mean = sum(per_chunk) / len(per_chunk)
    return {
        "chunks": len(chunks),
        "min": min(per_chunk),
        "max": max(per_chunk),
        "mean": mean,
        "imbalance": (max(per_chunk) / mean) if mean else 1.0,
    }
