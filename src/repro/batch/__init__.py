"""Parallel batch execution of independent distance computations.

The paper's repeated-use workloads (all-pairs matrices, 1-NN scans,
LOOCV, clustering) decompose into thousands of independent pairwise
calls.  :func:`batch_distances` runs such a batch over a
``multiprocessing`` pool with chunked scheduling, per-worker
series-artefact caching, deterministic result ordering and merged
DP-cell accounting; ``workers=1`` (the default everywhere) is the
exact serial computation.  The serial-vs-parallel equivalence
contract is enforced by the property suite in ``tests/batch/``.
"""

from .cache import CacheStats, SeriesCache
from .engine import (
    BatchResult,
    BatchSpec,
    all_pairs,
    argmin_first,
    batch_distances,
    batch_lb_keogh,
    default_chunksize,
)

__all__ = [
    "BatchResult",
    "BatchSpec",
    "CacheStats",
    "SeriesCache",
    "all_pairs",
    "argmin_first",
    "batch_distances",
    "batch_lb_keogh",
    "default_chunksize",
]
