"""Parallel batch execution of independent distance computations.

The paper's repeated-use workloads (all-pairs matrices, 1-NN scans,
LOOCV, clustering) decompose into thousands of independent pairwise
calls.  :func:`batch_distances` runs such a batch over a
``multiprocessing`` pool with cost-model chunk scheduling
(:mod:`repro.batch.schedule`), per-worker series-artefact caching,
deterministic result ordering and merged DP-cell accounting;
``workers=1`` (the default everywhere) is the exact serial
computation.  For repeated-use workloads, :class:`BatchExecutor`
keeps a warm pool alive across calls and ships each dataset once
over shared memory (:mod:`repro.batch.shm`) -- pass it (or
``"default"``) as ``executor=`` to any batch entry point.  The
serial-vs-parallel equivalence contract is enforced by the property
suite in ``tests/batch/``.
"""

from .cache import CacheStats, SeriesCache
from .engine import (
    BatchResult,
    BatchSpec,
    all_pairs,
    argmin_first,
    batch_distances,
    batch_lb_keogh,
    default_chunksize,
)
from .executor import (
    BatchExecutor,
    ExecutorStats,
    default_executor,
    resolve_executor,
    shutdown_default_executor,
)
from .schedule import chunk_cost_summary, distance_pair_cost, lb_pair_cost, plan_chunks
from .shm import pack_dataset, shm_available

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "BatchSpec",
    "CacheStats",
    "ExecutorStats",
    "SeriesCache",
    "all_pairs",
    "argmin_first",
    "batch_distances",
    "batch_lb_keogh",
    "chunk_cost_summary",
    "default_chunksize",
    "default_executor",
    "distance_pair_cost",
    "lb_pair_cost",
    "pack_dataset",
    "plan_chunks",
    "resolve_executor",
    "shm_available",
    "shutdown_default_executor",
]
