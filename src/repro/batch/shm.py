"""Zero-copy dataset shipping over POSIX shared memory.

The batch engine's one-shot pool path pickles the entire series set
through every pool initializer -- once per *call*, which is exactly
the amortisation failure the paper's repeated-use discussion warns
about.  This module ships a series set **once** per dataset instead:

* :func:`pack_dataset` flattens the series into one contiguous
  little-endian ``float64`` buffer plus an offsets table, and hashes
  the packed bytes into a content **fingerprint** -- the key under
  which executors and workers cache the dataset.  Two calls over the
  same values (even via different list objects) resolve to the same
  fingerprint; a single mutated sample changes it, so a stale segment
  can never be served for fresh data.
* :class:`ShmDataset` (parent side) copies the packed buffer into a
  :class:`multiprocessing.shared_memory.SharedMemory` segment and
  hands out a small picklable *descriptor* (fingerprint, segment
  name, per-series lengths) -- the only thing that ever crosses the
  process boundary per task.
* :class:`AttachedDataset` (worker side) maps the segment and reads
  series straight out of it -- ``memoryview.cast('d')`` (or
  ``np.frombuffer``) views, no copy on attach.  The pure-Python DP
  wants built-in floats, so each series is materialised with
  ``tolist()`` at most once per worker per dataset (bit-exact: the
  buffer holds IEEE doubles).

Everything here is stdlib-only; NumPy is used opportunistically for
the zero-copy array views.  When shared memory is unavailable the
executor falls back to tuple-of-tuples shipping (see
:mod:`repro.batch.executor`) -- same fingerprints, same semantics.

Resource-tracker hygiene: on CPython < 3.13 merely *attaching* a
segment registers it with the attaching process's resource tracker,
so a dying worker would unlink a segment its parent still owns (and
spam leak warnings).  :class:`AttachedDataset` therefore suppresses
the registration while attaching (see :class:`_suppress_tracking`);
only the creating executor ever unlinks.
"""

from __future__ import annotations

import hashlib
import os
from array import array
from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - import guard exercised via shm_available()
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - ancient/embedded pythons
    _shared_memory = None

#: Descriptor tuple shape: ``(kind, fingerprint, segment_name, lengths)``
#: for univariate datasets; multivariate descriptors append the sample
#: dimensionality as a fifth element (old readers, which unpack exactly
#: four, fail loudly on them instead of misreading the buffer).
ShmDescriptor = Tuple[str, str, str, Tuple[int, ...]]


def shm_available() -> bool:
    """Can this interpreter create shared-memory segments?"""
    return _shared_memory is not None


def fingerprint_bytes(
    payload: bytes, lengths: Sequence[int], dims: Optional[int] = None,
) -> str:
    """Content hash of a packed buffer + its offsets table.

    ``dims`` is ``None`` for univariate datasets (the historical
    preamble, byte-for-byte) and the sample dimensionality for
    multivariate ones -- a distinct preamble, so an nd dataset can
    never collide with the univariate dataset of its flattened values.
    """
    h = hashlib.blake2b(digest_size=16)
    if dims is None:
        h.update(repr(tuple(lengths)).encode())
    else:
        h.update(repr(("nd", dims, tuple(lengths))).encode())
    h.update(payload)
    return h.hexdigest()


def dataset_dims(series: Sequence[Sequence[float]]) -> Optional[int]:
    """The shared sample dimensionality of a dataset.

    ``None`` when every series is univariate (scalar samples); the
    common ``dims >= 1`` when every series is multivariate (samples
    are equal-length tuples/lists -- shape ``(length, dims)``).  A mix
    of the two, or differing dimensionalities, is always a caller bug
    and raises.
    """
    dims: Optional[int] = None
    first_vector = False
    for i, s in enumerate(series):
        if len(s) == 0:
            raise ValueError(f"series {i} is empty")
        vector = isinstance(s[0], (tuple, list))
        if i == 0:
            first_vector = vector
            dims = len(s[0]) if vector else None
        elif vector != first_vector:
            raise ValueError(
                f"series {i} is {'multivariate' if vector else 'univariate'} "
                f"but series 0 is {'multivariate' if first_vector else 'univariate'}; "
                "a dataset must be all-scalar or all (length, dims)"
            )
        elif vector and len(s[0]) != dims:
            raise ValueError(
                f"series {i} has {len(s[0])}-dimensional samples but "
                f"series 0 has {dims}-dimensional samples"
            )
    return dims


def pack_dataset(
    series: Sequence[Sequence[float]],
) -> Tuple[bytes, Tuple[int, ...], str]:
    """Flatten a series set into ``(payload, lengths, fingerprint)``.

    The payload is the concatenation of every series as native
    ``float64``; ``lengths`` recovers the per-series boundaries.  The
    fingerprint hashes both, so datasets differing only in how the
    same values are split into series hash differently.

    Multivariate series (samples are equal-length vectors) flatten
    sample-major -- series ``[(x0, y0), (x1, y1)]`` packs as
    ``x0 y0 x1 y1`` -- with ``lengths`` still counting *samples*, and
    the fingerprint carries the dimensionality (see
    :func:`fingerprint_bytes`); univariate payloads and fingerprints
    are byte-for-byte what they always were.

    >>> payload, lengths, fp = pack_dataset([(0.0, 1.0), (2.0,)])
    >>> lengths
    (2, 1)
    >>> len(payload)
    24
    >>> fp == pack_dataset([[0.0, 1.0], [2.0]])[2]
    True
    >>> nd_payload, nd_lengths, nd_fp = pack_dataset([[(0.0, 1.0)], [(2.0, 3.0)]])
    >>> nd_lengths
    (1, 1)
    >>> len(nd_payload)
    32
    >>> nd_fp == pack_dataset([[0.0, 1.0], [2.0, 3.0]])[2]
    False
    """
    dims = dataset_dims(series)
    flat = array("d")
    lengths: List[int] = []
    if dims is None:
        for s in series:
            flat.extend(s)
            lengths.append(len(s))
    else:
        for s in series:
            for v in s:
                flat.extend(v)
            lengths.append(len(s))
    if flat.itemsize != 8:  # pragma: no cover - no such platform today
        raise RuntimeError("array('d') is not 64-bit on this platform")
    payload = flat.tobytes()
    return payload, tuple(lengths), fingerprint_bytes(payload, lengths,
                                                      dims=dims)


def _offsets(lengths: Sequence[int]) -> List[Tuple[int, int]]:
    """Per-series ``(start, stop)`` element offsets into the buffer."""
    out, pos = [], 0
    for n in lengths:
        out.append((pos, pos + n))
        pos += n
    return out


class _suppress_tracking:
    """Block resource-tracker registration while *attaching*.

    On CPython < 3.13 ``SharedMemory(name=...)`` registers the segment
    with the attaching process's resource tracker exactly as a create
    does, so a dying worker would unlink a segment its parent still
    owns.  Unregistering after the fact is not enough either: the
    tracker's per-type cache is a set, so two workers registering and
    then unregistering the same name race into a spurious ``KeyError``
    inside the tracker process.  Suppressing the registration at its
    source avoids both failure modes; only the creating executor is
    ever tracked.  Best-effort: if tracker internals move, attaching
    still works and the only downside is a spurious leak warning.
    """

    def __enter__(self):
        try:
            from multiprocessing import resource_tracker

            self._tracker = resource_tracker
            self._register = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
        except Exception:  # pragma: no cover - exotic platforms
            self._tracker = None
        return self

    def __exit__(self, *exc):
        if self._tracker is not None:
            self._tracker.register = self._register
        return False


class ShmDataset:
    """Parent-side handle on one shipped dataset.

    Creates the segment, copies the packed payload in, and owns the
    unlink.  ``close()`` is idempotent and both closes the local
    mapping and unlinks the segment name from the system.
    """

    def __init__(self, payload: bytes, lengths: Tuple[int, ...],
                 fingerprint: str, dims: Optional[int] = None):
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        if not payload:
            # zero-length segments are rejected by the OS; a dataset of
            # empty series cannot reach here (validation rejects them)
            raise ValueError("cannot ship an empty dataset")
        self.fingerprint = fingerprint
        self.lengths = lengths
        self.dims = dims
        self.nbytes = len(payload)
        self._shm = _shared_memory.SharedMemory(create=True,
                                                size=len(payload))
        self._shm.buf[: len(payload)] = payload
        self.name = self._shm.name
        self._owner_pid = os.getpid()
        self._closed = False

    def descriptor(self) -> ShmDescriptor:
        """The picklable per-task reference to this dataset.

        Univariate datasets keep the historical 4-tuple; multivariate
        ones append ``dims``, so a reader that unpacks exactly four
        elements fails loudly instead of misreading an nd buffer.
        """
        if self.dims is None:
            return ("shm", self.fingerprint, self.name, self.lengths)
        return ("shm", self.fingerprint, self.name, self.lengths,
                self.dims)

    def close(self) -> None:
        """Close the mapping and unlink the segment (idempotent).

        Only the creating *process* unlinks: a forked child that
        inherited this handle (e.g. through an executor's dataset
        registry) merely detaches its copy of the mapping, so the
        parent's live segment cannot be unlinked out from under it
        when the child's globals are garbage collected.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        finally:
            if os.getpid() == self._owner_pid:
                try:
                    self._shm.unlink()
                except FileNotFoundError:  # pragma: no cover - gone
                    pass

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class AttachedDataset:
    """Worker-side view of a shipped dataset.

    Attaches by segment name, immediately unregisters from the local
    resource tracker (see module docstring), and serves series as:

    * :meth:`series` -- built-in ``float`` lists, materialised lazily
      and memoized (what the pure-Python DP engine wants);
    * :meth:`arrays` -- zero-copy ``np.frombuffer`` views when NumPy
      is importable (what vectorised consumers want).
    """

    def __init__(self, descriptor: ShmDescriptor):
        if len(descriptor) == 4:
            kind, fingerprint, name, lengths = descriptor
            dims: Optional[int] = None
        else:
            kind, fingerprint, name, lengths, dims = descriptor
        if kind != "shm":
            raise ValueError(f"not an shm descriptor: {kind!r}")
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        self.fingerprint = fingerprint
        self.lengths = tuple(lengths)
        self.dims = dims
        with _suppress_tracking():
            self._shm = _shared_memory.SharedMemory(name=name)
        count = sum(self.lengths) * (1 if dims is None else dims)
        self._view = memoryview(self._shm.buf)[: count * 8].cast("d")
        # element offsets: ``lengths`` counts samples, the buffer
        # holds ``dims`` doubles per sample (sample-major)
        scale = 1 if dims is None else dims
        self._bounds = [
            (a * scale, b * scale) for a, b in _offsets(self.lengths)
        ]
        self._series: Optional[Tuple[List[float], ...]] = None
        self._closed = False

    def series(self) -> Tuple[List[float], ...]:
        """All series as built-in floats (computed once).

        Univariate: a list of floats per series.  Multivariate: a list
        of ``dims``-tuples per series (sample-major, bit-exact).
        """
        if self._series is None:
            if self.dims is None:
                self._series = tuple(
                    self._view[a:b].tolist() for a, b in self._bounds
                )
            else:
                d = self.dims
                out = []
                for a, b in self._bounds:
                    flat = self._view[a:b].tolist()
                    out.append([
                        tuple(flat[i:i + d])
                        for i in range(0, len(flat), d)
                    ])
                self._series = tuple(out)
        return self._series

    def arrays(self):
        """Zero-copy ``float64`` array views, one per series.

        Requires NumPy; raises ``ImportError`` otherwise.  The views
        alias the shared segment -- treat them as read-only.
        Multivariate series come back as ``(length, dims)`` views.
        """
        import numpy as np

        count = sum(self.lengths) * (1 if self.dims is None else self.dims)
        base = np.frombuffer(self._shm.buf, dtype=np.float64, count=count)
        if self.dims is None:
            return tuple(base[a:b] for a, b in self._bounds)
        return tuple(
            base[a:b].reshape(-1, self.dims) for a, b in self._bounds
        )

    def close(self) -> None:
        """Release the local mapping (never unlinks -- parent owns)."""
        if self._closed:
            return
        self._closed = True
        self._series = None
        self._view.release()
        self._shm.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class InlineDataset:
    """Tuple-of-tuples fallback used when shared memory is off.

    Shipped through the pool initializer (once per pool, not once per
    task); presents the same access surface as :class:`AttachedDataset`
    so worker code is mode-blind.
    """

    def __init__(self, series: Sequence[Sequence[float]],
                 fingerprint: str):
        self.fingerprint = fingerprint
        self.lengths = tuple(len(s) for s in series)
        self.dims = dataset_dims(series)
        self._series = tuple(list(s) for s in series)

    def series(self) -> Tuple[List[float], ...]:
        return self._series

    def close(self) -> None:  # symmetry with AttachedDataset
        pass
