"""Persistent shared-memory batch executor: the warm-pool path.

The one-shot pool path in :mod:`repro.batch.engine` pays for a fresh
``multiprocessing.Pool`` -- process startup *plus* re-pickling the
whole series set through the initializer -- on **every** call.  For
the paper's repeated-use workloads (kNN, LOOCV, k-means, linkage: the
same dataset measured thousands of times) that overhead swamps the
parallel win; ``BENCH_kernels.json`` recorded ``python_workers`` at
0.85x *serial* because of it.

:class:`BatchExecutor` amortises all three cold costs:

1. **Warm pool** -- worker processes are created once (lazily, on the
   first job) and reused across calls; ``shutdown()`` / the context
   manager / GC reclaim them.  Fork- and spawn-safe: state is keyed
   by pid, so an executor object inherited across a ``fork`` starts
   fresh instead of fighting over its parent's pool.
2. **Ship-once datasets** -- the series set is packed into one shared
   ``float64`` segment (:mod:`repro.batch.shm`) keyed by a content
   fingerprint.  Repeated calls over the same values ship nothing;
   a mutated dataset gets a new fingerprint and a fresh segment, so
   stale data can never be served.  Workers attach zero-copy and
   cache per-dataset state (series, envelopes, z-norms) across jobs.
   When shared memory is unavailable, a tuple-of-tuples fallback
   ships through the pool initializer instead (once per dataset, not
   once per call).
3. **Cost-model scheduling** -- chunks are sized by the exact DP-cell
   models (:mod:`repro.batch.schedule`) and dispatched dynamically
   via ``imap_unordered``; results reassemble by task index, so
   determinism is untouched.

Observability (:mod:`repro.obs` counters, recorded when a trace is
active, mirrored unconditionally into :attr:`BatchExecutor.stats`):

=================  ====================================================
``pool.created``   jobs that had to build a worker pool
``pool.reused``    jobs served by an already-warm pool
``shm.datasets``   datasets shipped (new fingerprints seen)
``shm.bytes``      payload bytes shipped to shared memory
``sched.chunks``   chunks submitted to the dynamic scheduler
``sched.steals``   chunks that completed before an earlier-submitted
                   chunk -- evidence of dynamic rebalancing, the one
                   counter that legitimately varies run to run
=================  ====================================================

The serial path (``workers=1``, no executor) remains the bit-identical
default everywhere; the paper's timing harness never touches this
module (enforced by the source-scan pin tests).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import trace as _obs
from . import engine as _engine
from .shm import (
    AttachedDataset,
    InlineDataset,
    ShmDataset,
    dataset_dims,
    pack_dataset,
    shm_available,
)

Pair = Tuple[int, int]

#: Hard ceiling on explicit worker requests, as a multiple of the CPU
#: count -- permits deliberate oversubscription (tests on small boxes)
#: while stopping runaway fan-out.
MAX_OVERSUBSCRIPTION = 8


@dataclass
class ExecutorStats:
    """Lifecycle tallies, kept even when no trace is active."""

    pools_created: int = 0
    pools_reused: int = 0
    pools_poisoned: int = 0
    datasets_shipped: int = 0
    bytes_shipped: int = 0
    chunks: int = 0
    steals: int = 0
    jobs: int = 0


def _resolve_workers(workers: Optional[int], cap: Optional[str]) -> int:
    if cap not in ("cpu", None):
        raise ValueError(f"unknown cap policy {cap!r}; use 'cpu' or None")
    cpus = os.cpu_count() or 1
    if workers is None:
        return cpus
    # an explicit request must be a genuine positive int: bools and
    # floats would otherwise slip through the comparisons below and
    # silently build a degenerate (serial or fractional) pool under
    # either cap policy
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(
            f"workers must be an int >= 1, got {workers!r}"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    if cap == "cpu":
        return min(workers, cpus)
    return min(workers, cpus * MAX_OVERSUBSCRIPTION)


def _resolve_start_method(start_method: Optional[str]) -> str:
    methods = multiprocessing.get_all_start_methods()
    if start_method is None:
        return "fork" if "fork" in methods else "spawn"
    if start_method not in methods:
        raise ValueError(
            f"start method {start_method!r} unavailable; "
            f"pick from {methods}"
        )
    return start_method


def _release_state(state: dict) -> None:
    """Tear down a pool + dataset registry (idempotent, pid-guarded).

    Runs from ``shutdown()`` and from the GC finalizer.  A copy of the
    state inherited by a forked child must not touch the parent's
    pool or unlink its segments, hence the pid guard.
    """
    if state.get("released") or os.getpid() != state.get("pid"):
        return
    state["released"] = True
    pool = state.get("pool")
    state["pool"] = None
    if pool is not None:
        pool.terminate()
        pool.join()
    datasets = state.get("datasets") or {}
    for dataset in datasets.values():
        dataset.close()
    datasets.clear()


class BatchExecutor:
    """A reusable worker pool with ship-once dataset residency.

    Parameters
    ----------
    workers:
        Worker processes (default: ``os.cpu_count()``).
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else ``spawn``).
    use_shm:
        Ship datasets over :mod:`multiprocessing.shared_memory`
        (default: auto-detect).  ``False`` selects the
        tuple-of-tuples fallback, which re-ships through the pool
        initializer whenever the dataset fingerprint changes.
    cap:
        Worker-count policy for *explicit* ``workers`` requests:
        ``"cpu"`` (default) clamps to ``os.cpu_count()`` -- a pool
        wider than the machine only adds scheduling overhead --
        while ``None`` permits deliberate oversubscription (bounded
        by :data:`MAX_OVERSUBSCRIPTION` x CPUs), which the
        equivalence tests use to exercise real pools on 1-CPU CI.
    max_datasets:
        Shared-memory segments kept resident (LRU-evicted beyond
        this).

    Use as a context manager, or call :meth:`shutdown` explicitly;
    an executor that is garbage-collected cleans up after itself
    (weakref finalizer), so a leaked executor cannot leak ``/dev/shm``
    segments.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        use_shm: Optional[bool] = None,
        cap: Optional[str] = "cpu",
        max_datasets: int = 4,
    ):
        if max_datasets < 1:
            raise ValueError("max_datasets must be >= 1")
        self.workers = _resolve_workers(workers, cap)
        self.start_method = _resolve_start_method(start_method)
        self.use_shm = shm_available() if use_shm is None else bool(use_shm)
        self.max_datasets = max_datasets
        self.stats = ExecutorStats()
        self._lock = threading.Lock()
        self._state: dict = self._fresh_state()
        self._finalizer = weakref.finalize(
            self, _release_state, self._state
        )

    @staticmethod
    def _fresh_state() -> dict:
        return {
            "pid": os.getpid(),
            "pool": None,
            "datasets": OrderedDict(),  # fingerprint -> ShmDataset
            "inline": None,             # (fingerprint, series) or None
            "released": False,
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Has :meth:`shutdown` run (in this process)?"""
        return bool(self._state.get("released"))

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False

    def shutdown(self) -> None:
        """Terminate the pool and unlink every shipped segment.

        Idempotent.  After shutdown the executor refuses new jobs.
        """
        with self._lock:
            _release_state(self._state)

    def segment_names(self) -> Tuple[str, ...]:
        """Names of the currently resident shm segments (for tests)."""
        return tuple(
            d.name for d in self._state["datasets"].values()
        )

    def _check_usable(self) -> None:
        if self._state.get("released"):
            raise RuntimeError("executor is shut down")
        if os.getpid() != self._state["pid"]:
            # inherited across a fork: the parent's pool and segments
            # belong to the parent; start fresh in this process
            self._state = self._fresh_state()
            self._finalizer = weakref.finalize(
                self, _release_state, self._state
            )

    # -- dataset shipping --------------------------------------------------

    def _ship(self, series: Sequence[Sequence[float]]):
        """Ensure ``series`` is resident; return its task descriptor."""
        payload, lengths, fingerprint = pack_dataset(series)
        state = self._state
        if self.use_shm:
            dataset = state["datasets"].get(fingerprint)
            if dataset is None:
                dataset = ShmDataset(
                    payload, lengths, fingerprint,
                    dims=dataset_dims(series),
                )
                state["datasets"][fingerprint] = dataset
                self.stats.datasets_shipped += 1
                self.stats.bytes_shipped += dataset.nbytes
                _obs.incr("shm.datasets")
                _obs.incr("shm.bytes", dataset.nbytes)
                while len(state["datasets"]) > self.max_datasets:
                    _, evicted = state["datasets"].popitem(last=False)
                    evicted.close()
            else:
                state["datasets"].move_to_end(fingerprint)
            return dataset.descriptor()
        # inline fallback: the dataset rides in the pool initializer,
        # so a fingerprint change forces a pool rebuild (still once
        # per dataset, not once per call)
        inline = state["inline"]
        if inline is None or inline[0] != fingerprint:
            pool = state["pool"]
            state["pool"] = None
            if pool is not None:
                pool.terminate()
                pool.join()
            state["inline"] = (
                fingerprint, tuple(tuple(s) for s in series)
            )
            self.stats.datasets_shipped += 1
            _obs.incr("shm.datasets")
        return ("inline", fingerprint, None, tuple(len(s) for s in series))

    def _ensure_pool(self):
        state = self._state
        if state["pool"] is not None:
            self.stats.pools_reused += 1
            _obs.incr("pool.reused")
            return state["pool"]
        ctx = multiprocessing.get_context(self.start_method)
        if self.use_shm:
            initializer, initargs = _init_worker, ()
        else:
            fingerprint, series = state["inline"]
            initializer, initargs = _init_worker_inline, (
                fingerprint, series,
            )
        state["pool"] = ctx.Pool(
            processes=self.workers,
            initializer=initializer,
            initargs=initargs,
        )
        self.stats.pools_created += 1
        _obs.incr("pool.created")
        return state["pool"]

    # -- job execution -----------------------------------------------------

    def run_job(
        self,
        kind: str,
        params,
        series: Sequence[Sequence[float]],
        chunks: Sequence[Sequence[Pair]],
        traced: bool = False,
    ) -> List[tuple]:
        """Run one batch job; returns per-chunk results in chunk order.

        ``kind`` is ``"distance"`` (``params`` is a
        :class:`~repro.batch.engine.BatchSpec`) or ``"lb"``
        (``params`` is ``(band, squared, backend)``).  Each returned
        element is ``(outputs, cache_delta, trace_snapshot)`` exactly
        like the one-shot pool path produces, so the engine reassembles
        both identically.
        """
        if kind not in ("distance", "lb"):
            raise ValueError(f"unknown job kind {kind!r}")
        with self._lock:
            self._check_usable()
            descriptor = self._ship(series)
            pool = self._ensure_pool()
            tasks = [
                (index, kind, descriptor, params, tuple(chunk), traced)
                for index, chunk in enumerate(chunks)
            ]
            results: List[Optional[tuple]] = [None] * len(tasks)
            max_seen = -1
            steals = 0
            try:
                for index, out, delta, snapshot in pool.imap_unordered(
                    _exec_task, tasks
                ):
                    if index < max_seen:
                        steals += 1
                    else:
                        max_seen = index
                    results[index] = (out, delta, snapshot)
            except BaseException:
                # A worker exception (or a KeyboardInterrupt in this
                # process) abandons the job mid-drain, leaving tasks
                # in flight and results uncollected -- a poisoned
                # pool that the next job would inherit.  Terminate it
                # and let the next job lazily build a fresh one; the
                # shm dataset registry is untouched, so residency
                # (and the ship-once amortisation) survives.
                self._recycle_pool()
                raise
            self.stats.jobs += 1
            self.stats.chunks += len(tasks)
            self.stats.steals += steals
            _obs.incr("sched.chunks", len(tasks))
            _obs.incr("sched.steals", steals)
            return results  # fully populated: imap_unordered yielded all

    def _recycle_pool(self) -> None:
        """Terminate the warm pool after a failed job (caller locked).

        Dataset residency is deliberately preserved: only the pool is
        rebuilt, so the error path costs one pool start, not a
        re-ship of every resident dataset.
        """
        pool = self._state.get("pool")
        self._state["pool"] = None
        if pool is not None:
            pool.terminate()
            pool.join()
            self.stats.pools_poisoned += 1
            _obs.incr("pool.poisoned")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "shm" if self.use_shm else "inline"
        return (
            f"BatchExecutor(workers={self.workers}, "
            f"start_method={self.start_method!r}, mode={mode}, "
            f"closed={self.closed})"
        )


# -- module-level default executor ----------------------------------------

_DEFAULT: Optional[BatchExecutor] = None
_DEFAULT_PID: Optional[int] = None
_DEFAULT_LOCK = threading.Lock()


def default_executor() -> BatchExecutor:
    """The process-wide shared executor (created on first use).

    Sized to ``os.cpu_count()``.  Explicitly reclaim it with
    :func:`shutdown_default_executor`; a shut-down default is
    replaced on the next call.

    The singleton is keyed by pid: a forked child that inherited the
    parent's module globals gets a fresh executor of its own instead
    of the parent's handle (whose pool fds and ``/dev/shm`` segments
    belong to the parent), mirroring the per-instance fork guard in
    :meth:`BatchExecutor._check_usable`.
    """
    global _DEFAULT, _DEFAULT_PID
    with _DEFAULT_LOCK:
        if (
            _DEFAULT is None
            or _DEFAULT.closed
            or _DEFAULT_PID != os.getpid()
        ):
            _DEFAULT = BatchExecutor()
            _DEFAULT_PID = os.getpid()
        return _DEFAULT


def shutdown_default_executor() -> None:
    """Shut down and drop the process-wide default executor.

    In a forked child that inherited the parent's singleton this
    drops the reference without touching the parent's pool or
    segments (``shutdown`` is pid-guarded)."""
    global _DEFAULT, _DEFAULT_PID
    with _DEFAULT_LOCK:
        if _DEFAULT is not None:
            _DEFAULT.shutdown()
            _DEFAULT = None
            _DEFAULT_PID = None


def resolve_executor(executor) -> Optional[BatchExecutor]:
    """Normalise an ``executor=`` argument.

    ``None`` stays ``None`` (one-shot pool / serial semantics);
    ``"default"`` resolves to :func:`default_executor`; a
    :class:`BatchExecutor` passes through.
    """
    if executor is None:
        return None
    if executor == "default":
        return default_executor()
    if isinstance(executor, BatchExecutor):
        return executor
    raise TypeError(
        "executor must be None, 'default', or a BatchExecutor, "
        f"got {type(executor).__name__}"
    )


# -- worker side -----------------------------------------------------------
#
# Module globals, (re)built inside each pool worker.  Datasets attach
# lazily on the first task that names their fingerprint and persist
# across jobs; contexts (series cache + dispatch callable) persist per
# (kind, dataset, params), which is what makes repeated calls warm:
# envelopes and z-norms computed for call #1 serve call #1000.

_MAX_ATTACHED = 4
_MAX_CONTEXTS = 16

_ATTACHED: "OrderedDict[str, object]" = OrderedDict()
_CONTEXTS: "OrderedDict[tuple, object]" = OrderedDict()


def _init_worker() -> None:
    global _ATTACHED, _CONTEXTS
    # a forked worker inherits the parent's active RunTrace and any
    # dataset caches from a previous incarnation; both must be cleared
    _obs.reset()
    _ATTACHED = OrderedDict()
    _CONTEXTS = OrderedDict()


def _init_worker_inline(fingerprint: str, series) -> None:
    _init_worker()
    _ATTACHED[fingerprint] = InlineDataset(series, fingerprint)


def _evict_contexts(fingerprint: str) -> None:
    for key in [k for k in _CONTEXTS if k[1] == fingerprint]:
        del _CONTEXTS[key]


def _dataset_for(descriptor) -> object:
    kind, fingerprint = descriptor[0], descriptor[1]
    dataset = _ATTACHED.get(fingerprint)
    if dataset is None:
        if kind != "shm":
            raise RuntimeError(
                "inline dataset missing from worker (pool not "
                "initialized for this fingerprint)"
            )
        dataset = AttachedDataset(descriptor)
        _ATTACHED[fingerprint] = dataset
        while len(_ATTACHED) > _MAX_ATTACHED:
            evicted_fp, evicted = _ATTACHED.popitem(last=False)
            _evict_contexts(evicted_fp)
            evicted.close()
    else:
        _ATTACHED.move_to_end(fingerprint)
    return dataset


def _context_for(kind: str, descriptor, params):
    fingerprint = descriptor[1]
    key = (kind, fingerprint, params)
    context = _CONTEXTS.get(key)
    if context is None:
        dataset = _dataset_for(descriptor)
        series = dataset.series()
        # shared-memory datasets expose zero-copy float64 views; seed
        # them into the context so the stacked chunk kernels read the
        # resident buffer directly instead of re-converting the
        # materialised tuples (the views die with the context, and
        # _evict_contexts runs before the dataset closes)
        arrays = None
        if hasattr(dataset, "arrays"):
            try:
                arrays = dataset.arrays()
            except ImportError:
                arrays = None
        if kind == "distance":
            context = _engine._WorkerContext(
                series, spec=params, arrays=arrays
            )
        else:
            band, squared, backend = params
            context = _engine._WorkerContext(
                series, lb_band=band, lb_squared=squared,
                lb_backend=backend, arrays=arrays,
            )
        _CONTEXTS[key] = context
        while len(_CONTEXTS) > _MAX_CONTEXTS:
            _CONTEXTS.popitem(last=False)
    else:
        _CONTEXTS.move_to_end(key)
    return context


def _exec_task(task):
    """One scheduled chunk: resolve warm context, run, tag with index."""
    index, kind, descriptor, params, chunk, traced = task
    context = _context_for(kind, descriptor, params)
    context.traced = traced
    if kind == "distance":
        out, delta, snapshot = _engine._distance_chunk_outputs(
            context, chunk
        )
    else:
        out, delta, snapshot = _engine._lb_chunk_outputs(context, chunk)
    return index, out, delta, snapshot
