"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list                      # enumerate experiments
    python -m repro run fig1                  # laptop-scale defaults
    python -m repro run fig1 --paper-scale    # the paper's parameters
    python -m repro run all                   # everything (slow)
    python -m repro advise --n 945 --warping 0.04   # Table 1 verdict

Each experiment id matches DESIGN.md §3 and the module registry in
:mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .advisor.cases import analyze
from .experiments import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'FastDTW is Approximate and Generally "
            "Slower than the Algorithm it Approximates' (Wu & Keogh, "
            "ICDE 2021)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help=f"one of: all, {', '.join(sorted(EXPERIMENTS))}",
    )
    run.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full-scale parameters (hours, not seconds)",
    )

    sub.add_parser(
        "verdicts",
        help="run every experiment and check each paper claim",
    )

    advise = sub.add_parser(
        "advise", help="classify a task per the paper's Table 1"
    )
    advise.add_argument("--n", type=int, required=True,
                        help="series length N")
    advise.add_argument(
        "--warping", type=float, required=True,
        help="natural warping amount W as a fraction of N (e.g. 0.04)",
    )
    return parser


def _describe(module) -> str:
    doc = (module.__doc__ or "").strip().splitlines()
    return doc[0] if doc else ""


def cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        print(f"{name.ljust(width)}  {_describe(EXPERIMENTS[name])}")
    return 0


def cmd_run(experiment: str, paper_scale: bool) -> int:
    if experiment == "all":
        names = sorted(EXPERIMENTS)
    elif experiment in EXPERIMENTS:
        names = [experiment]
    else:
        print(
            f"unknown experiment {experiment!r}; run 'repro list'",
            file=sys.stderr,
        )
        return 2
    for name in names:
        module = EXPERIMENTS[name]
        config = module.PAPER_SCALE if paper_scale else module.DEFAULT
        result = module.run(config)
        print(module.format_report(result))
        print()
    return 0


def cmd_advise(n: int, warping: float) -> int:
    try:
        print(analyze(n=n, warping=warping).describe())
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_verdicts() -> int:
    from .experiments.verdicts import collect_verdicts, format_verdicts

    verdicts = collect_verdicts()
    print(format_verdicts(verdicts))
    return 0 if all(v.holds for v in verdicts) else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.experiment, args.paper_scale)
    if args.command == "advise":
        return cmd_advise(args.n, args.warping)
    if args.command == "verdicts":
        return cmd_verdicts()
    raise AssertionError(f"unhandled command {args.command!r}")
