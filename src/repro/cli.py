"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list                      # enumerate experiments
    python -m repro run fig1                  # laptop-scale defaults
    python -m repro run fig1 --paper-scale    # the paper's parameters
    python -m repro run all                   # everything (slow)
    python -m repro advise --n 945 --warping 0.04   # Table 1 verdict
    python -m repro batch --workers 4         # batch engine demo
    python -m repro trace --workload fastdtw  # instrumented run -> JSON
    python -m repro runtime --workers 4       # resolved execution context
    python -m repro index build --out d0.idx  # ahead-of-time search index
    python -m repro index stat d0.idx         # verify + summarise an index
    python -m repro index bench               # pruning power -> BENCH_index.json
    python -m repro rle bench                 # compression curve -> BENCH_rle.json
    python -m repro serve                     # micro-batching query service
    python -m repro serve --self-test         # parity + telemetry smoke

Each experiment id matches DESIGN.md §3 and the module registry in
:mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .advisor.cases import analyze
from .core.measures import MEASURES
from .experiments import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'FastDTW is Approximate and Generally "
            "Slower than the Algorithm it Approximates' (Wu & Keogh, "
            "ICDE 2021)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help=f"one of: all, {', '.join(sorted(EXPERIMENTS))}",
    )
    run.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full-scale parameters (hours, not seconds)",
    )

    sub.add_parser(
        "verdicts",
        help="run every experiment and check each paper claim",
    )

    batch = sub.add_parser(
        "batch",
        help="time a batched all-pairs run, serial vs parallel",
    )
    batch.add_argument(
        "--measure", default="cdtw", choices=list(MEASURES),
        help="distance measure (default cdtw)",
    )
    batch.add_argument("--count", type=int, default=16,
                       help="number of random-walk series (default 16)")
    batch.add_argument("--length", type=int, default=256,
                       help="length of each series (default 256)")
    batch.add_argument("--workers", type=int, default=2,
                       help="worker processes for the parallel run")
    batch.add_argument("--window", type=float, default=0.1,
                       help="cDTW window fraction (default 0.1)")
    batch.add_argument("--radius", type=int, default=1,
                       help="FastDTW radius (default 1)")
    batch.add_argument("--seed", type=int, default=0,
                       help="random-walk seed (default 0)")

    kernels = sub.add_parser(
        "kernels",
        help="micro-benchmark the kernel backends (python vs numpy)",
    )
    kernels.add_argument("--count", type=int, default=None,
                         help="number of random-walk series (default 8)")
    kernels.add_argument("--length", type=int, default=None,
                         help="length of each series (default 1000)")
    kernels.add_argument("--window", type=float, default=0.1,
                         help="cDTW window fraction (default 0.1)")
    kernels.add_argument("--workers", type=int, default=2,
                         help="pool size for the +workers rows (default 2)")
    kernels.add_argument("--repeats", type=int, default=3,
                         help="timing repeats, best-of (default 3)")
    kernels.add_argument("--seed", type=int, default=0,
                         help="random-walk seed (default 0)")
    kernels.add_argument("--smoke", action="store_true",
                         help="tiny CI workload (exercises the same "
                              "code paths, meaningless timings)")
    kernels.add_argument("--warm", action="store_true",
                         help="benchmark the persistent BatchExecutor "
                              "warm-vs-cold instead of the backends "
                              "(default output BENCH_batch.json)")
    kernels.add_argument("--nd", action="store_true",
                         help="benchmark the multivariate (DTW_D) "
                              "kernels instead of the scalar ones "
                              "(default output BENCH_multivariate.json)")
    kernels.add_argument("--dims", type=int, default=3,
                         help="channel count for --nd (default 3)")
    kernels.add_argument("--min-warm-speedup", type=float, default=None,
                         help="with --warm: fail (exit 1) if warm "
                              "python_workers speedup over serial is "
                              "below this (use on multi-core CI; "
                              "meaningless on 1 CPU)")
    kernels.add_argument("--min-warm-numpy-speedup", type=float,
                         default=None,
                         help="with --warm: fail (exit 1) if warm "
                              "numpy_workers speedup over numpy serial "
                              "is below this (the chunk-kernel path; "
                              "use on multi-core CI, meaningless on "
                              "1 CPU)")
    kernels.add_argument("--out", default=None,
                         help="output JSON path ('-' to skip writing; "
                              "default BENCH_kernels.json, or "
                              "BENCH_batch.json with --warm)")

    trace = sub.add_parser(
        "trace",
        help="run an instrumented workload; emit the JSON trace",
    )
    trace.add_argument(
        "--workload", default="fastdtw",
        choices=["fastdtw", "batch", "nn"],
        help="which reference workload to trace (default fastdtw)",
    )
    trace.add_argument("--length", type=int, default=256,
                       help="series length (default 256)")
    trace.add_argument("--count", type=int, default=8,
                       help="series/candidate count (default 8)")
    trace.add_argument("--radius", type=int, default=1,
                       help="FastDTW radius (default 1)")
    trace.add_argument("--window", type=float, default=0.1,
                       help="cDTW window fraction (default 0.1)")
    trace.add_argument("--workers", type=int, default=1,
                       help="batch-engine workers (default 1)")
    trace.add_argument("--backend", default=None,
                       help="kernel backend (default: process default)")
    trace.add_argument("--seed", type=int, default=0,
                       help="random-walk seed (default 0)")
    trace.add_argument("--out", default="-",
                       help="output JSON path ('-' = stdout, default)")
    trace.add_argument(
        "--overhead-check", action="store_true",
        help="instead of tracing, verify disabled instrumentation "
             "costs <=2%% on the DP hot loop (CI guard)",
    )

    advise = sub.add_parser(
        "advise", help="classify a task per the paper's Table 1"
    )
    advise.add_argument("--n", type=int, required=True,
                        help="series length N")
    advise.add_argument(
        "--warping", type=float, required=True,
        help="natural warping amount W as a fraction of N (e.g. 0.04)",
    )

    index = sub.add_parser(
        "index",
        help="build, inspect or benchmark an ahead-of-time search index",
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)

    index_build = index_sub.add_parser(
        "build",
        help="build an index over a synthetic-archive dataset and "
             "save it (repro.index/v1)",
    )
    index_build.add_argument("--out", required=True,
                             help="output index path")
    index_build.add_argument("--dataset", type=int, default=0,
                             help="synthetic-archive dataset number "
                                  "(default 0)")
    index_build.add_argument("--n-datasets", type=int, default=3,
                             help="archive size to generate (default 3)")
    index_build.add_argument("--window", type=float, default=0.1,
                             help="band as a fraction of length "
                                  "(default 0.1)")
    index_build.add_argument("--seed", type=int, default=0,
                             help="archive seed (default 0)")

    index_stat = index_sub.add_parser(
        "stat",
        help="load an index (verifying its fingerprint) and print "
             "its summary as JSON",
    )
    index_stat.add_argument("path", help="index file to inspect")

    index_bench = index_sub.add_parser(
        "bench",
        help="pruning-power benchmark: indexed vs unindexed, "
             "LB_Keogh vs +LB_Improved (default output "
             "BENCH_index.json)",
    )
    index_bench.add_argument("--n-datasets", type=int, default=3,
                             help="archive size (default 3)")
    index_bench.add_argument("--per-class", type=int, default=5,
                             help="series per class per dataset "
                                  "(default 5)")
    index_bench.add_argument("--window", type=float, default=0.1,
                             help="band fraction (default 0.1)")
    index_bench.add_argument("--seed", type=int, default=0,
                             help="archive seed (default 0)")
    index_bench.add_argument("--backend", default=None,
                             help="kernel backend (default: process "
                                  "default)")
    index_bench.add_argument("--out", default="BENCH_index.json",
                             help="output JSON path ('-' to skip "
                                  "writing; default BENCH_index.json)")

    rle = sub.add_parser(
        "rle",
        help="benchmark the compressed-domain (run-length encoded) "
             "exact DTW fast path",
    )
    rle_sub = rle.add_subparsers(dest="rle_command", required=True)
    rle_bench = rle_sub.add_parser(
        "bench",
        help="compression-ratio-vs-speedup curve on quantized power "
             "traces; exits nonzero unless distances are bit-exact "
             "and the compressed path wins at high compression "
             "(default output BENCH_rle.json)",
    )
    rle_bench.add_argument("--length", type=int, default=450,
                           help="trace length (default 450)")
    rle_bench.add_argument("--n-pairs", type=int, default=2,
                           help="trace pairs per quantization level "
                                "(default 2)")
    rle_bench.add_argument("--repeats", type=int, default=3,
                           help="timing repeats, best-of (default 3)")
    rle_bench.add_argument("--window", type=float, default=0.1,
                           help="band fraction for the banded variant "
                                "(default 0.1)")
    rle_bench.add_argument("--seed", type=int, default=0,
                           help="trace seed (default 0)")
    rle_bench.add_argument("--backend", default=None,
                           help="kernel backend (default: process "
                                "default)")
    rle_bench.add_argument("--out", default="BENCH_rle.json",
                           help="output JSON path ('-' to skip "
                                "writing; default BENCH_rle.json)")

    serve = sub.add_parser(
        "serve",
        help="run the micro-batching query service "
             "(newline-delimited JSON over TCP)",
    )
    serve.add_argument(
        "--self-test", action="store_true",
        help="run the deployable-system check instead of serving: "
             "mixed burst, parity vs sequential, telemetry "
             "reconciliation, shm hygiene (nonzero exit on any "
             "failure)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port (default 8787)")
    serve.add_argument("--window-ms", type=float, default=5.0,
                       help="micro-batch collection window in "
                            "milliseconds (default 5.0)")
    serve.add_argument("--workers", type=int, default=None,
                       help="query-execution workers (default: the "
                            "process-default runtime)")
    serve.add_argument("--backend", default=None,
                       help="kernel backend (default: process default)")
    serve.add_argument("--no-index", action="store_true",
                       help="disable the DatasetIndex fast path")

    runtime = sub.add_parser(
        "runtime",
        help="print the resolved effective Runtime as JSON",
    )
    runtime.add_argument("--workers", type=int, default=None,
                         help="override the runtime's worker count")
    runtime.add_argument("--backend", default=None,
                         help="override the runtime's kernel backend")
    runtime.add_argument("--executor", default=None,
                         help="override the runtime's executor "
                              "('default' = the shared process pool)")
    runtime.add_argument("--chunksize", default=None,
                         help="override the chunk policy "
                              "(int, 'auto' or 'legacy')")
    return parser


def _describe(module) -> str:
    doc = (module.__doc__ or "").strip().splitlines()
    return doc[0] if doc else ""


def cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        print(f"{name.ljust(width)}  {_describe(EXPERIMENTS[name])}")
    return 0


def cmd_run(experiment: str, paper_scale: bool) -> int:
    if experiment == "all":
        names = sorted(EXPERIMENTS)
    elif experiment in EXPERIMENTS:
        names = [experiment]
    else:
        print(
            f"unknown experiment {experiment!r}; run 'repro list'",
            file=sys.stderr,
        )
        return 2
    for name in names:
        module = EXPERIMENTS[name]
        config = module.PAPER_SCALE if paper_scale else module.DEFAULT
        result = module.run(config)
        print(module.format_report(result))
        print()
    return 0


def cmd_advise(n: int, warping: float) -> int:
    try:
        print(analyze(n=n, warping=warping).describe())
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_batch(args) -> int:
    from .datasets.random_walk import random_walks
    from .timing.runner import batch_pairwise_experiment

    if args.count < 2:
        print("error: --count must be at least 2", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    series = random_walks(args.count, args.length, seed=args.seed)
    kwargs = {"measure": args.measure}
    if args.measure == "cdtw":
        kwargs["window"] = args.window
    elif args.measure in ("fastdtw", "fastdtw_reference"):
        kwargs["radius"] = args.radius
    serial = batch_pairwise_experiment(series, workers=1, **kwargs)
    parallel = batch_pairwise_experiment(
        series, workers=args.workers, **kwargs
    )
    match = "identical" if serial.cells == parallel.cells else "MISMATCH"
    print(
        f"batch: {serial.pairs} pairs of {args.measure} "
        f"(k={args.count}, n={args.length})"
    )
    print(f"  serial   (workers=1):  {serial.seconds:.3f}s"
          f"  cells={serial.cells}")
    print(f"  parallel (workers={args.workers}):  {parallel.seconds:.3f}s"
          f"  cells={parallel.cells}")
    print(f"  cell accounting: {match}; "
          f"speedup x{parallel.speedup_over(serial):.2f}")
    return 0 if serial.cells == parallel.cells else 1


def cmd_kernels(args) -> int:
    import json

    from .timing.kernel_bench import (
        SMOKE_COUNT,
        SMOKE_LENGTH,
        executor_benchmark,
        format_executor_report,
        format_report,
        kernel_benchmark,
        multivariate_benchmark,
    )

    if args.warm and args.nd:
        print("error: --warm and --nd are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.smoke:
        count = args.count if args.count is not None else SMOKE_COUNT
        length = args.length if args.length is not None else SMOKE_LENGTH
        repeats = 1
    else:
        count = args.count if args.count is not None else 8
        length = args.length if args.length is not None else 1000
        repeats = args.repeats
    bench = executor_benchmark if args.warm else kernel_benchmark
    out = args.out
    if out is None:
        out = "BENCH_batch.json" if args.warm else "BENCH_kernels.json"
    extra = {}
    if args.nd:
        bench = multivariate_benchmark
        extra["dims"] = args.dims
        if args.out is None:
            out = "BENCH_multivariate.json"
    try:
        report = bench(
            length=length, count=count, window=args.window,
            workers=args.workers, repeats=repeats, seed=args.seed,
            **extra,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.warm:
        print(format_executor_report(report))
    else:
        print(format_report(report))
    if out != "-":
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"  wrote {out}")
    parity = report["parity"]
    ok = parity["distances_identical"] and parity["cells_identical"]
    if args.warm and args.min_warm_speedup is not None:
        speedup = report["warm_python_speedup_over_serial"]
        if speedup < args.min_warm_speedup:
            print(
                f"error: warm python_workers speedup x{speedup:.2f} "
                f"below required x{args.min_warm_speedup:.2f} "
                f"(cpu_count={report['cpu_count']})",
                file=sys.stderr,
            )
            return 1
    if args.warm and args.min_warm_numpy_speedup is not None:
        speedup = report["warm_numpy_speedup_over_numpy_serial"]
        if speedup < args.min_warm_numpy_speedup:
            print(
                f"error: warm numpy_workers speedup x{speedup:.2f} "
                f"below required x{args.min_warm_numpy_speedup:.2f} "
                f"(cpu_count={report['cpu_count']})",
                file=sys.stderr,
            )
            return 1
    return 0 if ok else 1


def cmd_trace(args) -> int:
    import json

    if args.overhead_check:
        from .obs.bench import trace_overhead_check

        result = trace_overhead_check()
        payload = json.dumps(result, indent=2)
        pct = result["overhead"] * 100.0
        print(f"trace overhead (disabled): {pct:+.2f}% "
              f"(tolerance {result['tolerance'] * 100:.0f}%) -- "
              f"{'OK' if result['ok'] else 'FAIL'}")
        if args.out != "-":
            with open(args.out, "w") as fh:
                fh.write(payload + "\n")
            print(f"  wrote {args.out}")
        return 0 if result["ok"] else 1

    from .obs.workloads import run_traced_workload

    try:
        document = run_traced_workload(
            args.workload, length=args.length, count=args.count,
            radius=args.radius, window=args.window, workers=args.workers,
            backend=args.backend, seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = json.dumps(document, indent=2)
    if args.out == "-":
        print(payload)
    else:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.out} (ok={document['ok']})")
    if not document["ok"]:
        print("error: trace counters failed reconciliation",
              file=sys.stderr)
        return 1
    return 0


def cmd_runtime(args) -> int:
    import json

    from .runtime import Runtime

    chunksize = args.chunksize
    if chunksize is not None and chunksize not in ("auto", "legacy"):
        try:
            chunksize = int(chunksize)
        except ValueError:
            print(
                f"error: --chunksize must be an int, 'auto' or "
                f"'legacy', got {chunksize!r}",
                file=sys.stderr,
            )
            return 2
    try:
        rt = Runtime.resolve(
            workers=args.workers, backend=args.backend,
            executor=args.executor, chunksize=chunksize,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(rt.describe(), indent=2))
    return 0


def cmd_index(args) -> int:
    import json

    from .index import (
        IndexMismatchError,
        build_index,
        format_index_report,
        index_benchmark,
        load_index,
        save_index,
    )

    if args.index_command == "build":
        from math import ceil

        from .datasets.synthetic_archive import synthetic_archive

        entries = synthetic_archive(
            n_datasets=args.n_datasets, seed=args.seed,
        )
        if not 0 <= args.dataset < len(entries):
            print(
                f"error: --dataset must be in [0, {len(entries) - 1}]",
                file=sys.stderr,
            )
            return 2
        dataset = entries[args.dataset].dataset
        band = ceil(args.window * dataset.length)
        index = build_index([list(s) for s in dataset.series], band)
        header = save_index(index, args.out)
        print(json.dumps(
            {
                "path": args.out,
                "dataset": dataset.name,
                "count": header["count"],
                "length": header["length"],
                "band": header["band"],
                "source_fingerprint": header["source_fingerprint"],
            },
            indent=2,
        ))
        return 0

    if args.index_command == "stat":
        try:
            index = load_index(args.path)
        except (OSError, IndexMismatchError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(index.describe(), indent=2))
        return 0

    # args.index_command == "bench"
    from .runtime import Runtime

    runtime = Runtime(backend=args.backend) if args.backend else None
    report = index_benchmark(
        n_datasets=args.n_datasets, per_class=args.per_class,
        window=args.window, seed=args.seed, runtime=runtime,
    )
    for line in format_index_report(report):
        print(line)
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"  wrote {args.out}")
    return 0 if report["agree"] and report["improved_fewer_dtw_calls"] else 1


def cmd_rle(args) -> int:
    import json

    from .core.rle_bench import format_rle_report, rle_benchmark
    from .runtime import Runtime

    runtime = Runtime(backend=args.backend) if args.backend else None
    report = rle_benchmark(
        length=args.length, n_pairs=args.n_pairs,
        repeats=args.repeats, window=args.window, seed=args.seed,
        runtime=runtime,
    )
    for line in format_rle_report(report):
        print(line)
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"  wrote {args.out}")
    return 0 if report["passed"] else 1


def cmd_verdicts() -> int:
    from .experiments.verdicts import collect_verdicts, format_verdicts

    verdicts = collect_verdicts()
    print(format_verdicts(verdicts))
    return 0 if all(v.holds for v in verdicts) else 1


def cmd_serve(args) -> int:
    from .runtime import Runtime
    from .serve import run_self_test, run_server

    if args.self_test:
        return run_self_test(
            workers=args.workers or 2, window_ms=args.window_ms
        )
    runtime = Runtime.resolve(
        None, workers=args.workers, backend=args.backend
    )
    print(
        f"serving on {args.host}:{args.port} "
        f"(window {args.window_ms}ms, workers {runtime.workers}, "
        f"index {'off' if args.no_index else 'on'}) -- ctrl-c to stop"
    )
    run_server(
        host=args.host, port=args.port, window_ms=args.window_ms,
        runtime=runtime, use_index=not args.no_index,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.experiment, args.paper_scale)
    if args.command == "advise":
        return cmd_advise(args.n, args.warping)
    if args.command == "verdicts":
        return cmd_verdicts()
    if args.command == "batch":
        return cmd_batch(args)
    if args.command == "kernels":
        return cmd_kernels(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "runtime":
        return cmd_runtime(args)
    if args.command == "index":
        return cmd_index(args)
    if args.command == "rle":
        return cmd_rle(args)
    if args.command == "serve":
        return cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")
