"""The query service's synchronous core.

:class:`QueryService` is the in-process front door: register datasets,
call :meth:`execute` (one request) or :meth:`execute_batch` (a
micro-batch the :class:`~repro.serve.batcher.MicroBatcher` collected),
get :class:`~repro.serve.protocol.QueryResponse` objects back.  The
asyncio layers are thin shells around this class, so everything about
correctness lives here:

* **One execution lane.**  ``repro.obs`` keys its active trace to the
  process, so request execution is serialised under one lock; the
  parallelism that matters runs *inside* a request via the warm
  :class:`~repro.batch.executor.BatchExecutor` the service owns.
* **Determinism.**  Every op executes through the same public entry
  point a standalone caller would use (``nearest_neighbor``,
  ``subsequence_search``, ``find_discord``, ``find_motif``), or
  through the batch engine under its proven first-wins/lossless
  invariants -- so micro-batched answers are bit-identical to
  one-request-at-a-time answers.  The property suite and the
  ``--self-test`` both assert this.
* **Coalescing.**  Same-collection, same-band ``1nn`` requests that
  are not riding the index fast path fuse into **one**
  :func:`~repro.batch.engine.batch_distances` job (all query rows in
  a single pool dispatch), and each request recovers its answer with
  :func:`~repro.batch.engine.argmin_first` -- the exact serial tie
  rule.  Lower-bound pruning is lossless for both the neighbour and
  its distance, so the fused full-compute rows return bit-identical
  answers to the pruned serial scan.
* **Amortisation.**  Indexes and pure results are cached across
  requests by content fingerprint (:mod:`repro.serve.registry`);
  re-registration invalidates by fingerprint sweep.
* **Accounting.**  Each request runs under its own
  :class:`repro.obs.RunTrace`; its ``dp.calls``/``dp.cells`` become
  the response's telemetry and the snapshot folds into a service
  accumulator, so per-request numbers reconcile exactly with the
  service totals.

Shutdown ordering (async layers follow it too): stop accepting work,
then drain in-flight batches, then shut the owned executor down
(unlinking shm segments), then drop caches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..anomaly import find_discord
from ..batch.engine import argmin_first, batch_distances
from ..batch.executor import BatchExecutor
from ..motifs import find_motif
from ..obs import RunTrace
from ..runtime import Runtime
from ..search import (
    nearest_neighbor,
    subsequence_search,
    subsequence_search_topk,
)
from .protocol import (
    ProtocolError,
    QueryRequest,
    QueryResponse,
    Telemetry,
    parse_request,
)
from .registry import ArtifactCache, DatasetRegistry, RegisteredDataset

__all__ = ["QueryService", "ServiceStats"]

#: latencies kept for the percentile estimates (a rolling window)
_MAX_LATENCIES = 4096


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = -(-len(sorted_values) * q // 100)  # ceil(n * q / 100)
    return sorted_values[max(1, min(len(sorted_values), int(rank))) - 1]


@dataclass
class ServiceStats:
    """Service-level accounting snapshot (see :meth:`QueryService.stats`)."""

    requests: int = 0
    errors: int = 0
    batches: int = 0
    coalesced_requests: int = 0
    p50_latency_ms: float = 0.0
    p99_latency_ms: float = 0.0
    dtw_calls: int = 0
    dp_cells: int = 0
    index_builds: int = 0
    index_hits: int = 0
    result_hits: int = 0
    datasets: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "batches": self.batches,
            "coalesced_requests": self.coalesced_requests,
            "p50_latency_ms": round(self.p50_latency_ms, 3),
            "p99_latency_ms": round(self.p99_latency_ms, 3),
            "dtw_calls": self.dtw_calls,
            "dp_cells": self.dp_cells,
            "index_builds": self.index_builds,
            "index_hits": self.index_hits,
            "result_hits": self.result_hits,
            "datasets": list(self.datasets),
        }


class QueryService:
    """Synchronous query front door (see the module notes).

    Parameters
    ----------
    runtime:
        Execution context for query work (``None`` = the process
        default).  When the resolved context is parallel but names no
        executor, the service creates and **owns** a warm
        :class:`~repro.batch.executor.BatchExecutor` sized to it, so
        pools and shm residency persist across requests and are
        reclaimed on :meth:`close`.
    use_index:
        Serve eligible ops through cached
        :class:`~repro.index.DatasetIndex` artifacts (default on).
        Per-request ``index`` parameters override it either way;
        answers are bit-identical regardless (the index fast path is
        lossless).
    cache_results:
        Memoise whole answers for repeated identical requests
        (default on; every op here is a pure function of dataset
        content + parameters).
    use_rle, rle_threshold:
        Auto-route ``1nn``/``knn`` over sufficiently compressible
        collections through the compressed-domain measure
        (``rle_cdtw``, :mod:`repro.core.rle`).  A collection routes
        when its samples-per-run ratio clears ``rle_threshold`` *and*
        every value sits on the RLE exactness grid, so routed answers
        are bit-identical to the dense path by construction.  The
        per-request ``rle`` parameter forces routing on (rejected
        off-grid) or off.
    """

    def __init__(
        self,
        runtime: Optional[Runtime] = None,
        use_index: bool = True,
        cache_results: bool = True,
        max_indexes: int = 32,
        max_results: int = 256,
        use_rle: bool = True,
        rle_threshold: float = 4.0,
    ):
        rt = Runtime.resolve(runtime)
        self._own_executor: Optional[BatchExecutor] = None
        if rt.parallel and rt.executor is None:
            self._own_executor = BatchExecutor(workers=rt.workers)
            rt = rt.replace(executor=self._own_executor)
        self.runtime = rt
        self.use_index = use_index
        self.cache_results = cache_results
        if rle_threshold < 1.0:
            raise ValueError(
                "rle_threshold must be >= 1.0 (samples per run)"
            )
        self.use_rle = use_rle
        self.rle_threshold = rle_threshold
        self.registry = DatasetRegistry()
        self.artifacts = ArtifactCache(
            max_indexes=max_indexes, max_results=max_results
        )
        self._lock = threading.Lock()
        self._accumulator = RunTrace()  # never activated; merge target
        self._latencies: List[float] = []
        self._requests = 0
        self._errors = 0
        self._batches = 0
        self._coalesced = 0
        self._closed = False

    # -- registration ------------------------------------------------------

    def register(self, name: str, series) -> str:
        """Register a collection; returns its content fingerprint."""
        with self._lock:
            self._check_open()
            entry = self.registry.register(name, series)
            self.artifacts.retain_only(self.registry.fingerprints())
            return entry.fingerprint

    def register_stream(self, name: str, values) -> str:
        """Register a stream; returns its content fingerprint."""
        with self._lock:
            self._check_open()
            entry = self.registry.register_stream(name, values)
            self.artifacts.retain_only(self.registry.fingerprints())
            return entry.fingerprint

    # -- execution ---------------------------------------------------------

    def execute(
        self, request: Union[QueryRequest, Mapping[str, Any]]
    ) -> QueryResponse:
        """Execute one request (parsed or raw mapping)."""
        return self.execute_batch([request])[0]

    def execute_batch(
        self, requests: Sequence[Union[QueryRequest, Mapping[str, Any]]]
    ) -> List[QueryResponse]:
        """Execute one micro-batch; responses in request order.

        Failures are isolated per request: a bad request yields an
        ``ok=False`` response in its slot, never an exception that
        takes down its batch-mates.
        """
        with self._lock:
            self._check_open()
            self._batches += 1
            parsed: List[Optional[QueryRequest]] = []
            responses: List[Optional[QueryResponse]] = [None] * len(requests)
            for pos, raw in enumerate(requests):
                try:
                    req = (
                        raw if isinstance(raw, QueryRequest)
                        else parse_request(raw)
                    )
                    parsed.append(req)
                except ProtocolError as exc:
                    parsed.append(None)
                    responses[pos] = self._error_response(raw, exc)

            batch_size = len(requests)
            groups = self._coalesce_groups(parsed)
            grouped = {pos for group in groups for pos in group}
            for group in groups:
                self._execute_coalesced(
                    [parsed[pos] for pos in group], group, responses,
                    batch_size,
                )
            for pos, req in enumerate(parsed):
                if req is None or pos in grouped:
                    continue
                responses[pos] = self._execute_one(req, batch_size)
            assert all(r is not None for r in responses)
            return responses  # type: ignore[return-value]

    # -- stats / lifecycle -------------------------------------------------

    def stats(self) -> ServiceStats:
        """A point-in-time accounting snapshot."""
        with self._lock:
            ordered = sorted(self._latencies)
            return ServiceStats(
                requests=self._requests,
                errors=self._errors,
                batches=self._batches,
                coalesced_requests=self._coalesced,
                p50_latency_ms=_percentile(ordered, 50),
                p99_latency_ms=_percentile(ordered, 99),
                dtw_calls=self._accumulator.counter("dp.calls"),
                dp_cells=self._accumulator.counter("dp.cells"),
                index_builds=self.artifacts.stats.index_builds,
                index_hits=self.artifacts.stats.index_hits,
                result_hits=self.artifacts.stats.result_hits,
                datasets=self.registry.names(),
            )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut down: refuse new work, reclaim executor, drop caches.

        Idempotent.  The owned executor's shutdown unlinks every shm
        segment the service shipped; the async layers drain their
        batch queue *before* calling this (shutdown ordering).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._own_executor is not None:
                self._own_executor.shutdown()
                self._own_executor = None
            self.artifacts.clear()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")

    # -- internals ---------------------------------------------------------

    def _error_response(self, raw, exc) -> QueryResponse:
        self._requests += 1
        self._errors += 1
        op = dataset = "?"
        request_id = None
        if isinstance(raw, QueryRequest):
            op, dataset, request_id = raw.op, raw.dataset, raw.id
        elif isinstance(raw, Mapping):
            op = str(raw.get("op", "?"))
            dataset = str(raw.get("dataset", "?"))
            request_id = raw.get("id")
            if request_id is not None:
                request_id = str(request_id)
        return QueryResponse(
            op=op, dataset=dataset, ok=False, error=str(exc),
            id=request_id,
        )

    def _use_index_for(self, request: QueryRequest) -> bool:
        return bool(request.param("index", self.use_index))

    def _rle_routed(
        self, request: QueryRequest, dataset: RegisteredDataset
    ) -> bool:
        """Route this request through the compressed-domain measure?

        The per-request ``rle`` parameter forces routing on (rejected
        unless the dataset sits on the exactness grid, where the block
        DP is provably bit-identical to the dense engine) or off;
        absent, the service auto-routes collections whose compression
        ratio clears :attr:`rle_threshold` *and* whose values are on
        the grid.  Routed or not, the answer is the same -- routing
        only changes how much work produces it.
        """
        if dataset.kind != "collection":
            return False
        forced = request.param("rle")
        if forced is False:
            return False
        if forced is True:
            if dataset.dims != 1:
                raise ProtocolError(
                    f"rle=true requested, but dataset {dataset.name!r}"
                    " is multivariate; the compressed-domain engine is"
                    " univariate"
                )
            if not dataset.rle_exact:
                raise ProtocolError(
                    f"rle=true requested, but dataset {dataset.name!r}"
                    " is not on the RLE exactness grid (compressed "
                    "answers could drift from the dense engine)"
                )
            return True
        return (
            self.use_rle
            and dataset.rle_exact
            and dataset.compression_ratio >= self.rle_threshold
        )

    def _result_key(
        self, request: QueryRequest, fingerprint: str
    ) -> tuple:
        return (
            fingerprint, request.op,
            tuple(sorted(request.params.items())), request.query,
        )

    def _coalesce_groups(
        self, parsed: Sequence[Optional[QueryRequest]]
    ) -> List[List[int]]:
        """Positions of fusable ``1nn`` requests, grouped.

        A group fuses when: parallel runtime (there is a pool to
        amortise), op ``1nn``, the request is off the index fast path
        (index off, or RLE-routed -- which supersedes the index), no
        cached result, same collection fingerprint + band + RLE
        routing, and at least two members.  Routing rides in the
        bucket key so one fused job always runs one measure.
        """
        if not self.runtime.parallel:
            return []
        buckets: Dict[tuple, List[int]] = {}
        for pos, req in enumerate(parsed):
            if req is None or req.op != "1nn":
                continue
            try:
                dataset = self.registry.get(req.dataset)
            except ProtocolError:
                continue  # the per-request path reports the error
            if dataset.kind != "collection":
                continue
            try:
                routed = self._rle_routed(req, dataset)
            except ProtocolError:
                continue  # the per-request path reports the error
            if self._use_index_for(req) and not routed:
                continue
            if self.cache_results and self.artifacts.peek_result(
                self._result_key(req, dataset.fingerprint)
            ):
                continue  # memoised; the per-request path serves it
            buckets.setdefault(
                (dataset.fingerprint, req.param("band"), routed), []
            ).append(pos)
        return [group for group in buckets.values() if len(group) >= 2]

    def _execute_coalesced(
        self,
        group: Sequence[QueryRequest],
        positions: Sequence[int],
        responses: List[Optional[QueryResponse]],
        batch_size: int,
    ) -> None:
        """Fuse one ``1nn`` group into a single batch job.

        One ``batch_distances`` call computes every query's full
        candidate row; each request recovers ``argmin_first`` of its
        row -- bit-identical to its serial pruned scan (first-wins
        ties, lossless bounds).  Per-request telemetry is exact:
        request *i*'s ``dp_cells`` is the sum over its row of
        ``cells_per_pair``.
        """
        first = group[0]
        dataset = self.registry.get(first.dataset)
        band = first.param("band")
        if self._rle_routed(first, dataset):
            measure = "rle_cdtw"
        elif dataset.dims != 1:
            measure = "cdtw_d"
        else:
            measure = "cdtw"
        candidates = dataset.series
        count = len(candidates)
        usable: List[Tuple[int, QueryRequest]] = []
        for pos, req in zip(positions, group):
            bad = self._length_mismatch(req.query, candidates)
            if bad is not None:
                responses[pos] = self._error_response(req, bad)
            else:
                usable.append((pos, req))
        if not usable:
            return
        if len(usable) == 1:
            pos, req = usable[0]
            responses[pos] = self._execute_one(req, batch_size)
            return

        series = list(candidates) + [req.query for _, req in usable]
        pairs = [
            (count + qi, j)
            for qi in range(len(usable))
            for j in range(count)
        ]
        started = time.perf_counter()
        try:
            with RunTrace() as trace:
                result = batch_distances(
                    series, pairs=pairs, measure=measure, band=band,
                    runtime=self.runtime,
                )
            snapshot = trace.snapshot()
        except Exception as exc:
            for pos, req in usable:
                responses[pos] = self._error_response(req, exc)
            return
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._accumulator.merge(snapshot)
        share_ms = elapsed_ms / len(usable)
        for qi, (pos, req) in enumerate(usable):
            row = result.distances[qi * count:(qi + 1) * count]
            cells = sum(
                result.cells_per_pair[qi * count:(qi + 1) * count]
            )
            best_idx, best = argmin_first(row)
            answer = {"index": best_idx, "distance": best}
            telemetry = Telemetry(
                latency_ms=share_ms, dtw_calls=count, dp_cells=cells,
                batched_with=batch_size,
            )
            if self.cache_results:
                self.artifacts.put_result(
                    self._result_key(req, dataset.fingerprint), answer
                )
            self._requests += 1
            self._coalesced += 1
            self._record_latency(share_ms)
            responses[pos] = QueryResponse(
                op=req.op, dataset=req.dataset, ok=True, answer=answer,
                telemetry=telemetry, id=req.id,
            )

    def _execute_one(
        self, request: QueryRequest, batch_size: int
    ) -> QueryResponse:
        """One request through its public entry point, traced."""
        started = time.perf_counter()
        try:
            dataset = self.registry.get(request.dataset)
            key = self._result_key(request, dataset.fingerprint)
            if self.cache_results:
                cached = self.artifacts.get_result(key)
                if cached is not None:
                    elapsed = (time.perf_counter() - started) * 1000.0
                    self._requests += 1
                    self._record_latency(elapsed)
                    return QueryResponse(
                        op=request.op, dataset=request.dataset, ok=True,
                        answer=cached, id=request.id,
                        telemetry=Telemetry(
                            latency_ms=elapsed, dtw_calls=0, dp_cells=0,
                            batched_with=batch_size, cached=True,
                        ),
                    )
            builds_before = self.artifacts.stats.index_builds
            with RunTrace() as trace:
                answer = self._dispatch(request, dataset)
            snapshot = trace.snapshot()
        except (ProtocolError, ValueError, RuntimeError) as exc:
            return self._error_response(request, exc)
        elapsed = (time.perf_counter() - started) * 1000.0
        self._accumulator.merge(snapshot)
        if self.cache_results:
            self.artifacts.put_result(key, answer)
        self._requests += 1
        self._record_latency(elapsed)
        return QueryResponse(
            op=request.op, dataset=request.dataset, ok=True,
            answer=answer, id=request.id,
            telemetry=Telemetry(
                latency_ms=elapsed,
                dtw_calls=trace.counter("dp.calls"),
                dp_cells=trace.counter("dp.cells"),
                batched_with=batch_size,
                index_builds=(
                    self.artifacts.stats.index_builds - builds_before
                ),
            ),
        )

    def _record_latency(self, latency_ms: float) -> None:
        self._latencies.append(latency_ms)
        if len(self._latencies) > _MAX_LATENCIES:
            del self._latencies[: len(self._latencies) // 2]

    @staticmethod
    def _length_mismatch(query, candidates) -> Optional[ProtocolError]:
        def _dims(s):
            return len(s[0]) if s and hasattr(s[0], "__len__") else 1

        q_dims = _dims(query)
        bad_dims = [d for c in candidates if (d := _dims(c)) != q_dims]
        if bad_dims:
            return ProtocolError(
                f"query has {q_dims} channel(s) but the dataset's "
                f"series have {bad_dims[0]}; multivariate search "
                "needs matching dimensionality"
            )
        bad = [len(c) for c in candidates if len(c) != len(query)]
        if bad:
            return ProtocolError(
                f"query length {len(query)} does not match candidate "
                f"lengths (e.g. {bad[0]}); banded search needs equal "
                "lengths"
            )
        return None

    # -- op dispatch -------------------------------------------------------

    def _dispatch(
        self, request: QueryRequest, dataset: RegisteredDataset
    ) -> Dict[str, Any]:
        handler = {
            "1nn": self._op_1nn,
            "knn": self._op_knn,
            "subsequence": self._op_subsequence,
            "discord": self._op_discord,
            "motif": self._op_motif,
        }[request.op]
        return handler(request, dataset)

    def _require_kind(
        self, dataset: RegisteredDataset, kind: str, op: str
    ) -> None:
        if dataset.kind != kind:
            raise ProtocolError(
                f"op {op!r} needs a {kind} dataset, but "
                f"{dataset.name!r} is a {dataset.kind}"
            )

    def _op_1nn(self, request, dataset) -> Dict[str, Any]:
        self._require_kind(dataset, "collection", "1nn")
        bad = self._length_mismatch(request.query, dataset.series)
        if bad is not None:
            raise bad
        band = request.param("band")
        if self._rle_routed(request, dataset):
            count = len(dataset.series)
            series = list(dataset.series) + [request.query]
            result = batch_distances(
                series, pairs=[(count, j) for j in range(count)],
                measure="rle_cdtw", band=band, runtime=self.runtime,
            )
            idx, best = argmin_first(result.distances)
            return {"index": idx, "distance": best}
        index = (
            self.artifacts.index_for(dataset, band=band)
            if self._use_index_for(request) else None
        )
        result = nearest_neighbor(
            list(request.query), [list(s) for s in dataset.series],
            strategy="cdtw+lb", band=band, runtime=self.runtime,
            index=index,
        )
        return {"index": result.index, "distance": result.distance}

    def _op_knn(self, request, dataset) -> Dict[str, Any]:
        self._require_kind(dataset, "collection", "knn")
        bad = self._length_mismatch(request.query, dataset.series)
        if bad is not None:
            raise bad
        k = request.param("k", 1)
        count = len(dataset.series)
        if k > count:
            raise ProtocolError(
                f"k={k} exceeds the {count} registered series"
            )
        if self._rle_routed(request, dataset):
            measure = "rle_cdtw"
        elif dataset.dims != 1:
            measure = "cdtw_d"
        else:
            measure = "cdtw"
        series = list(dataset.series) + [request.query]
        result = batch_distances(
            series, pairs=[(count, j) for j in range(count)],
            measure=measure, band=request.param("band"),
            runtime=self.runtime,
        )
        ranked = sorted(
            range(count), key=lambda j: (result.distances[j], j)
        )[:k]
        return {
            "neighbors": [
                {"index": j, "distance": result.distances[j]}
                for j in ranked
            ]
        }

    def _op_subsequence(self, request, dataset) -> Dict[str, Any]:
        self._require_kind(dataset, "stream", "subsequence")
        band = request.param("band")
        step = request.param("step", 1)
        normalize = request.param("normalize", True)
        k = request.param("k", 1)
        window = len(request.query)
        index = (
            self.artifacts.index_for(
                dataset, band=band, window=window, step=step,
                normalize=normalize,
            )
            if self._use_index_for(request) else None
        )
        if k == 1:
            match = subsequence_search(
                list(request.query), list(dataset.stream), band=band,
                step=step, normalize=normalize, runtime=self.runtime,
                index=index,
            )
            return {"start": match.start, "distance": match.distance}
        matches = subsequence_search_topk(
            list(request.query), list(dataset.stream), band=band, k=k,
            step=step, exclusion=request.param("exclusion"),
            normalize=normalize, runtime=self.runtime, index=index,
        )
        return {
            "matches": [
                {"start": m.start, "distance": m.distance}
                for m in matches
            ]
        }

    def _op_discord(self, request, dataset) -> Dict[str, Any]:
        self._require_kind(dataset, "stream", "discord")
        band = request.param("band")
        step = request.param("step", 1)
        window = request.param("window")
        normalize = request.param("normalize", True)
        index = (
            self.artifacts.index_for(
                dataset, band=band, window=window, step=step,
                normalize=normalize,
            )
            if self._use_index_for(request) else None
        )
        discord = find_discord(
            list(dataset.stream), window=window, band=band, step=step,
            exclusion=request.param("exclusion"), normalize=normalize,
            runtime=self.runtime, index=index,
        )
        return {
            "start": discord.start,
            "score": discord.score,
            "neighbor_start": discord.neighbor_start,
        }

    def _op_motif(self, request, dataset) -> Dict[str, Any]:
        self._require_kind(dataset, "stream", "motif")
        band = request.param("band")
        step = request.param("step", 1)
        window = request.param("window")
        normalize = request.param("normalize", True)
        index = (
            self.artifacts.index_for(
                dataset, band=band, window=window, step=step,
                normalize=normalize,
            )
            if self._use_index_for(request) else None
        )
        motif = find_motif(
            list(dataset.stream), window=window, band=band, step=step,
            exclusion=request.param("exclusion"), normalize=normalize,
            runtime=self.runtime, index=index,
        )
        return {
            "start_a": motif.start_a,
            "start_b": motif.start_b,
            "distance": motif.distance,
        }
