"""``python -m repro serve --self-test``: the deployable-system check.

Starts an in-process async service, fires a mixed query burst through
the micro-batcher, and verifies the serving layer's whole contract:

1. **Parity** -- every micro-batched answer is bit-identical to the
   same request executed one-at-a-time on a fresh service (and the
   index fast path agrees with the index-free path);
2. **Telemetry reconciliation** -- summing per-request ``dtw_calls``
   and ``dp_cells`` over all responses equals the service's
   aggregated ``repro.obs`` counters exactly;
3. **Amortisation** -- a second query against the same dataset builds
   strictly fewer index artifacts than the first (cache hit), and a
   repeated identical query is served from the result cache with zero
   DP work;
4. **Batching** -- the burst actually coalesced (at least one
   executed batch holds several requests);
5. **Latency surface** -- ``p50_latency_ms``/``p99_latency_ms`` are
   present and sane;
6. **Hygiene** -- no ``/dev/shm`` segment survives service shutdown;
7. **Compressed-domain routing** -- on a quantized step dataset the
   ``rle``-forced, ``rle``-suppressed and auto-routed answers are
   bit-identical, and forcing ``rle`` on an off-grid dataset is
   rejected rather than risking drift.

Exit code 0 only if every check passes; any parity mismatch (or any
other failure) is nonzero.  Used as the CI smoke for the serve job.
"""

from __future__ import annotations

import asyncio
import os
import random
from typing import List, Tuple

from ..runtime import Runtime
from .server import AsyncQueryService
from .service import QueryService

__all__ = ["run_self_test"]


def _dataset(count: int, length: int, seed: int) -> List[List[float]]:
    rng = random.Random(seed)
    return [
        [rng.uniform(-3.0, 3.0) for _ in range(length)]
        for _ in range(count)
    ]


def _burst(queries: List[List[float]]) -> List[dict]:
    """The mixed workload: every op, index on and off, repeats."""
    return [
        {"op": "1nn", "dataset": "coll", "band": 3,
         "query": queries[0], "id": "nn-idx-0"},
        {"op": "1nn", "dataset": "coll", "band": 3,
         "query": queries[1], "id": "nn-idx-1"},
        # index off + same band: these fuse into one batch job
        {"op": "1nn", "dataset": "coll", "band": 3, "index": False,
         "query": queries[0], "id": "nn-raw-0"},
        {"op": "1nn", "dataset": "coll", "band": 3, "index": False,
         "query": queries[1], "id": "nn-raw-1"},
        {"op": "1nn", "dataset": "coll", "band": 3, "index": False,
         "query": queries[2], "id": "nn-raw-2"},
        {"op": "knn", "dataset": "coll", "band": 3, "k": 3,
         "query": queries[2], "id": "knn-0"},
        {"op": "subsequence", "dataset": "stream", "band": 2,
         "query": queries[3][:12], "id": "sub-0"},
        {"op": "subsequence", "dataset": "stream", "band": 2, "k": 2,
         "query": queries[3][:12], "id": "sub-topk"},
        {"op": "discord", "dataset": "stream", "window": 12, "band": 2,
         "id": "discord-0"},
        {"op": "motif", "dataset": "stream", "window": 12, "band": 2,
         "id": "motif-0"},
    ]


async def _run_burst(
    service: AsyncQueryService, burst: List[dict]
) -> list:
    return await asyncio.gather(
        *(service.query(request) for request in burst)
    )


def run_self_test(
    verbose: bool = True, workers: int = 2, window_ms: float = 25.0
) -> int:
    """Run every check; return 0 on success, 1 on any failure."""
    checks: List[Tuple[str, bool, str]] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append((name, bool(ok), detail))

    series = _dataset(count=8, length=24, seed=41)
    stream = _dataset(count=1, length=90, seed=43)[0]
    queries = _dataset(count=4, length=24, seed=47)

    shm_before = (
        set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm")
        else None
    )
    runtime = Runtime(workers=workers)

    async def batched_phase():
        async with AsyncQueryService(
            window_ms=window_ms, runtime=runtime
        ) as service:
            service.register("coll", series)
            service.register_stream("stream", stream)
            responses = await _run_burst(service, _burst(queries))

            # amortisation: the same dataset again, different query
            warm = await service.query({
                "op": "1nn", "dataset": "coll", "band": 3,
                "query": queries[3], "id": "nn-warm",
            })
            # result cache: byte-identical repeat of the first request
            repeat = await service.query({
                "op": "1nn", "dataset": "coll", "band": 3,
                "query": queries[0], "id": "nn-repeat",
            })
            stats = service.stats()
            batcher = service.batcher
            return responses, warm, repeat, stats, (
                batcher.batches, batcher.largest_batch,
            )

    responses, warm, repeat, stats, batch_info = asyncio.run(
        batched_phase()
    )

    # -- parity against one-at-a-time execution ---------------------------
    with QueryService(runtime=runtime, cache_results=False) as sequential:
        sequential.register("coll", series)
        sequential.register_stream("stream", stream)
        reference = [sequential.execute(r) for r in _burst(queries)]

    ok_answers = all(r.ok for r in responses)
    check("all burst requests succeeded", ok_answers,
          "; ".join(r.error or "" for r in responses if not r.ok))
    mismatches = [
        (got.id, got.answer, want.answer)
        for got, want in zip(responses, reference)
        if got.answer != want.answer
    ]
    check(
        "micro-batched answers bit-identical to sequential",
        ok_answers and not mismatches,
        f"mismatched: {mismatches[:3]}",
    )

    # index on vs off must agree too (lossless fast path, served live)
    nn_idx = {r.id: r for r in responses}
    check(
        "index fast path agrees with raw path",
        ok_answers
        and nn_idx["nn-idx-0"].answer == nn_idx["nn-raw-0"].answer
        and nn_idx["nn-idx-1"].answer == nn_idx["nn-raw-1"].answer,
    )

    # -- telemetry reconciles with the obs counters ------------------------
    everything = list(responses) + [warm, repeat]
    calls = sum(r.telemetry.dtw_calls for r in everything if r.ok)
    cells = sum(r.telemetry.dp_cells for r in everything if r.ok)
    check(
        "per-request dtw_calls reconcile with obs counters",
        calls == stats.dtw_calls,
        f"sum={calls} service={stats.dtw_calls}",
    )
    check(
        "per-request dp_cells reconcile with obs counters",
        cells == stats.dp_cells,
        f"sum={cells} service={stats.dp_cells}",
    )

    # -- amortisation across requests --------------------------------------
    first_builds = nn_idx["nn-idx-0"].telemetry.index_builds
    check(
        "second query builds strictly fewer index artifacts",
        warm.ok and first_builds >= 1
        and warm.telemetry.index_builds < first_builds,
        f"first={first_builds} warm={warm.telemetry.index_builds}",
    )
    check(
        "repeated identical query served from the result cache",
        repeat.ok and repeat.telemetry.cached
        and repeat.telemetry.dtw_calls == 0
        and repeat.answer == nn_idx["nn-idx-0"].answer,
    )

    # -- batching actually happened ----------------------------------------
    batches, largest = batch_info
    check(
        "burst coalesced into micro-batches",
        largest >= 2 and batches < len(everything),
        f"batches={batches} largest={largest}",
    )
    fused = [r for r in responses if r.id and r.id.startswith("nn-raw")]
    check(
        "same-dataset 1nn requests fused into one batch job",
        all(r.ok and r.telemetry.batched_with >= 2 for r in fused),
    )

    # -- latency surface ---------------------------------------------------
    payload = stats.to_dict()
    check(
        "stats expose p50/p99 latency fields",
        "p50_latency_ms" in payload and "p99_latency_ms" in payload
        and payload["p99_latency_ms"] >= payload["p50_latency_ms"] >= 0,
    )

    # -- compressed-domain routing parity ----------------------------------
    grid = 2.0 ** -4
    rng = random.Random(53)

    def step_series() -> List[float]:
        out: List[float] = []
        while len(out) < 24:
            value = rng.randrange(-32, 33) * grid
            out.extend([value] * rng.randrange(4, 9))
        return out[:24]

    steps = [step_series() for _ in range(8)]
    with QueryService(runtime=runtime, cache_results=False) as rle_svc:
        rle_svc.register("steps", steps)
        entry = rle_svc.registry.get("steps")
        check(
            "quantized dataset profiles as RLE-exact and compressible",
            entry.rle_exact
            and entry.compression_ratio >= rle_svc.rle_threshold,
            f"ratio={entry.compression_ratio:.2f} "
            f"exact={entry.rle_exact}",
        )
        rle_parity = True
        for query in (step_series() for _ in range(3)):
            base = {"op": "1nn", "dataset": "steps", "band": 3,
                    "index": False, "query": query}
            on = rle_svc.execute({**base, "rle": True})
            off = rle_svc.execute({**base, "rle": False})
            auto = rle_svc.execute(
                {"op": "1nn", "dataset": "steps", "band": 3,
                 "query": query}
            )
            k_on = rle_svc.execute(
                {"op": "knn", "dataset": "steps", "band": 3, "k": 3,
                 "query": query, "rle": True}
            )
            k_off = rle_svc.execute(
                {"op": "knn", "dataset": "steps", "band": 3, "k": 3,
                 "query": query, "rle": False}
            )
            rle_parity = rle_parity and (
                on.ok and off.ok and auto.ok and k_on.ok and k_off.ok
                and on.answer == off.answer == auto.answer
                and k_on.answer == k_off.answer
            )
        check(
            "rle-routed answers bit-identical to the dense path",
            rle_parity,
        )
        rle_svc.register("offgrid", series)
        forced = rle_svc.execute(
            {"op": "1nn", "dataset": "offgrid", "band": 3,
             "query": queries[0], "rle": True}
        )
        check(
            "forcing rle on an off-grid dataset is rejected",
            not forced.ok and "exactness grid" in (forced.error or ""),
            forced.error or "unexpectedly succeeded",
        )

    # -- shm hygiene -------------------------------------------------------
    if shm_before is not None:
        leaked = set(os.listdir("/dev/shm")) - shm_before
        check("no /dev/shm segment outlived shutdown", not leaked,
              f"leaked: {sorted(leaked)[:5]}")

    failed = [c for c in checks if not c[1]]
    if verbose:
        for name, ok, detail in checks:
            mark = "ok" if ok else "FAIL"
            suffix = f"  ({detail})" if detail and not ok else ""
            print(f"  [{mark:>4}] {name}{suffix}")
        summary = (
            f"serve self-test: {len(checks) - len(failed)}/{len(checks)} "
            "checks passed"
        )
        print(summary)
    return 1 if failed else 0
