"""The asyncio front door: in-process async API and socket server.

:class:`AsyncQueryService` glues a synchronous
:class:`~repro.serve.service.QueryService` to a
:class:`~repro.serve.batcher.MicroBatcher`: ``await query(...)``
enqueues into the current collection window and resolves with that
request's response.  Shutdown ordering is the documented contract:
**stop accepting -> drain the batcher -> close the service** (which
shuts the owned executor down and unlinks its shm segments) -- so no
in-flight request ever sees a closed executor and no segment outlives
the process's interest in it.

The socket protocol is newline-delimited JSON, one object per line:

* query ops -- the :mod:`repro.serve.protocol` vocabulary verbatim;
* ``{"admin": "register", "name": ..., "series": [[...], ...]}`` /
  ``{"admin": "register_stream", "name": ..., "values": [...]}`` --
  dataset registration (never batched);
* ``{"admin": "stats"}`` -- the service's accounting snapshot;
* ``{"admin": "ping"}`` -- liveness.

Responses echo the request's ``id`` when given, so clients may
pipeline as many requests per connection as they like -- that is the
whole point of the batcher.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Mapping, Optional, Union

from .batcher import MicroBatcher
from .protocol import QueryRequest, QueryResponse
from .service import QueryService

__all__ = ["AsyncQueryService", "run_server", "serve"]


class AsyncQueryService:
    """Async wrapper: micro-batched queries over a sync service.

    Either wrap an existing :class:`QueryService` (``service=``) or
    let the constructor build one from the remaining keyword
    arguments.  A wrapped service is still owned: :meth:`close`
    closes it after the drain.
    """

    def __init__(
        self,
        service: Optional[QueryService] = None,
        window_ms: float = 5.0,
        max_batch: int = 64,
        **service_kwargs,
    ):
        if service is not None and service_kwargs:
            raise ValueError(
                "pass either a service or its constructor kwargs"
            )
        self.service = service or QueryService(**service_kwargs)
        self.batcher = MicroBatcher(
            self.service.execute_batch, window_ms=window_ms,
            max_batch=max_batch,
        )
        self.window_ms = window_ms

    async def query(
        self, request: Union[QueryRequest, Mapping[str, Any]]
    ) -> QueryResponse:
        """Submit one query into the current micro-batch window."""
        return await self.batcher.submit(request)

    def register(self, name: str, series) -> str:
        return self.service.register(name, series)

    def register_stream(self, name: str, values) -> str:
        return self.service.register_stream(name, values)

    def stats(self):
        return self.service.stats()

    async def close(self) -> None:
        """Shutdown ordering: refuse -> drain batcher -> close service."""
        await self.batcher.close()
        self.service.close()

    async def __aenter__(self) -> "AsyncQueryService":
        return self

    async def __aexit__(self, *exc) -> bool:
        await self.close()
        return False


async def _handle_admin(
    service: AsyncQueryService, obj: Mapping[str, Any]
) -> Mapping[str, Any]:
    kind = obj.get("admin")
    try:
        if kind == "ping":
            return {"ok": True, "pong": True}
        if kind == "stats":
            return {"ok": True, "stats": service.stats().to_dict()}
        if kind == "register":
            fingerprint = service.register(
                obj.get("name", ""), obj.get("series") or []
            )
            return {"ok": True, "fingerprint": fingerprint}
        if kind == "register_stream":
            fingerprint = service.register_stream(
                obj.get("name", ""), obj.get("values") or []
            )
            return {"ok": True, "fingerprint": fingerprint}
        return {"ok": False, "error": f"unknown admin op {kind!r}"}
    except Exception as exc:
        return {"ok": False, "error": str(exc)}


async def _handle_connection(
    service: AsyncQueryService,
    reader: "asyncio.StreamReader",
    writer: "asyncio.StreamWriter",
) -> None:
    async def respond(payload: Mapping[str, Any]) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()

    async def run_query(obj: Mapping[str, Any]) -> None:
        response = await service.query(obj)
        await respond(response.to_dict())

    tasks = []
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                await respond({"ok": False, "error": f"bad json: {exc}"})
                continue
            if isinstance(obj, dict) and "admin" in obj:
                await respond(await _handle_admin(service, obj))
                continue
            # queries run concurrently so pipelined requests land in
            # the same collection window -- that's what batches them
            tasks.append(asyncio.ensure_future(run_query(obj)))
            tasks = [t for t in tasks if not t.done()]
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


async def serve(
    service: AsyncQueryService,
    host: str = "127.0.0.1",
    port: int = 8787,
) -> "asyncio.AbstractServer":
    """Start the newline-delimited-JSON server (caller owns its life)."""
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )


def run_server(
    host: str = "127.0.0.1",
    port: int = 8787,
    window_ms: float = 5.0,
    **service_kwargs,
) -> None:
    """Blocking entry point behind ``python -m repro serve``."""

    async def main() -> None:
        async with AsyncQueryService(
            window_ms=window_ms, **service_kwargs
        ) as service:
            server = await serve(service, host, port)
            async with server:
                await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
