"""repro.serve: the repeated-search stack as a long-running service.

The paper's case against FastDTW is an *amortisation* argument: exact
banded DTW wins because repeated use lets lower bounds, warm pools and
precomputed artifacts carry the cost of the first query into the
thousandth (Wu & Keogh, ICDE 2021).  PRs 1-7 built that machinery --
the warm :class:`~repro.batch.executor.BatchExecutor`, shm dataset
residency, the :class:`~repro.index.DatasetIndex` cascade -- and this
package is its front door: a service where the Nth user's query is
measurably cheaper than the 1st.

Layers (each usable on its own):

* :class:`QueryService` -- the synchronous in-process core: register
  datasets, execute requests, everything cached by content
  fingerprint;
* :class:`MicroBatcher` / :class:`AsyncQueryService` -- latency-
  budgeted cross-request micro-batching over asyncio;
* :func:`run_server` -- the newline-delimited-JSON socket server
  behind ``python -m repro serve``;
* :func:`run_self_test` -- the deployable-system check behind
  ``python -m repro serve --self-test`` (parity, telemetry
  reconciliation, amortisation, shm hygiene).

The paper harness (:mod:`repro.timing`, :mod:`repro.experiments`)
never imports this package -- the reproduced numbers stay serial and
pure-python, enforced by the source-scan pin tests.
"""

from .batcher import MicroBatcher
from .protocol import (
    OPS,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    Telemetry,
    parse_request,
)
from .registry import ArtifactCache, DatasetRegistry, RegisteredDataset
from .selftest import run_self_test
from .server import AsyncQueryService, run_server, serve
from .service import QueryService, ServiceStats

__all__ = [
    "OPS",
    "ArtifactCache",
    "AsyncQueryService",
    "DatasetRegistry",
    "MicroBatcher",
    "ProtocolError",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "RegisteredDataset",
    "ServiceStats",
    "Telemetry",
    "parse_request",
    "run_self_test",
    "run_server",
    "serve",
]
