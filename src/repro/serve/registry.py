"""Dataset registration and the fingerprint-keyed artifact cache.

The service's amortisation story rests on two invariants:

* a dataset is known by its **content fingerprint** (the blake2b hash
  :func:`repro.batch.shm.pack_dataset` computes), not its name -- so
  re-registering a name with different values can never serve stale
  artifacts, and re-registering identical values keeps every cached
  artifact warm;
* every expensive per-dataset artifact (a built
  :class:`~repro.index.DatasetIndex` with its envelopes and moments,
  a memoised pure query result) is cached under that fingerprint plus
  the exact build parameters, so the Nth query is strictly cheaper
  than the 1st -- the paper's repeated-use argument, applied to the
  serving layer.

Nothing here is thread-safe on its own; :class:`~repro.serve.service.
QueryService` serialises access under its execution lock.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..batch.shm import dataset_dims, pack_dataset
from ..core.rle import RleSeries
from ..core.validate import validate_series
from ..index import DatasetIndex, build_index, build_stream_index
from .protocol import ProtocolError

__all__ = ["ArtifactCache", "DatasetRegistry", "RegisteredDataset"]


@dataclass(frozen=True)
class RegisteredDataset:
    """One named dataset: a collection of series, or a single stream.

    Registration also profiles the content for the compressed-domain
    fast path (:mod:`repro.core.rle`): ``run_counts`` holds each
    series' tolerance-zero run count, ``compression_ratio`` the
    samples-per-run average the service thresholds on, and
    ``rle_exact`` whether every value sits on the dyadic grid where
    the block DP is provably bit-identical to the dense engine
    (:meth:`repro.core.rle.RleSeries.exactness_grid`).

    Multivariate datasets (rows of ``(length, dims)`` vector samples)
    record ``dims > 1``; the RLE profile is skipped for them (the
    compressed-domain engine is scalar), so they never auto-route.
    """

    name: str
    kind: str  # "collection" | "stream"
    series: Tuple[Tuple[Any, ...], ...]
    fingerprint: str
    run_counts: Tuple[int, ...] = ()
    compression_ratio: float = 1.0
    rle_exact: bool = False
    dims: int = 1

    @property
    def stream(self) -> Tuple[float, ...]:
        """The stream values (``stream`` kind only)."""
        return self.series[0]


def _canonical_row(values) -> Tuple[Any, ...]:
    """One series as float tuples: flat, or per-sample for nd rows."""
    items = list(values)
    if items and isinstance(items[0], (tuple, list)):
        return tuple(tuple(float(c) for c in v) for v in items)
    return tuple(float(v) for v in items)


def _rle_profile(rows) -> Tuple[Tuple[int, ...], float, bool]:
    """(run counts, samples per run, on-the-exactness-grid?) of rows."""
    encoded = [RleSeries.encode(row) for row in rows]
    runs = tuple(e.run_count for e in encoded)
    ratio = sum(len(row) for row in rows) / sum(runs)
    return runs, ratio, all(e.exactness_grid() for e in encoded)


class DatasetRegistry:
    """Name -> :class:`RegisteredDataset`, fingerprinted on entry."""

    def __init__(self):
        self._datasets: Dict[str, RegisteredDataset] = {}

    def register(self, name: str, series) -> RegisteredDataset:
        """Register a collection of series under ``name``.

        Returns the entry (its ``fingerprint`` identifies the content).
        Re-registering a name replaces the previous entry; identical
        content keeps the same fingerprint, so downstream artifact
        caches stay warm.
        """
        if not name:
            raise ProtocolError("dataset name must be non-empty")
        rows = [_canonical_row(s) for s in series]
        if not rows:
            raise ProtocolError(f"dataset {name!r} has no series")
        for i, row in enumerate(rows):
            validate_series(row, f"series {i}")
        try:
            dims = dataset_dims(rows)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        _, _, fingerprint = pack_dataset(rows)
        if dims is None:
            runs, ratio, exact = _rle_profile(rows)
        else:
            # the RLE engine is scalar; nd datasets never route
            runs, ratio, exact = (), 1.0, False
        entry = RegisteredDataset(
            name=name, kind="collection", series=tuple(rows),
            fingerprint=fingerprint, run_counts=runs,
            compression_ratio=ratio, rle_exact=exact,
            dims=1 if dims is None else dims,
        )
        self._datasets[name] = entry
        return entry

    def register_stream(self, name: str, values) -> RegisteredDataset:
        """Register a single stream under ``name``."""
        if not name:
            raise ProtocolError("dataset name must be non-empty")
        row = _canonical_row(values)
        validate_series(row, "stream")
        try:
            dims = dataset_dims([row])
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        _, _, fingerprint = pack_dataset([row])
        if dims is None:
            runs, ratio, exact = _rle_profile([row])
        else:
            runs, ratio, exact = (), 1.0, False
        entry = RegisteredDataset(
            name=name, kind="stream", series=(row,),
            fingerprint=fingerprint, run_counts=runs,
            compression_ratio=ratio, rle_exact=exact,
            dims=1 if dims is None else dims,
        )
        self._datasets[name] = entry
        return entry

    def get(self, name: str) -> RegisteredDataset:
        entry = self._datasets.get(name)
        if entry is None:
            known = sorted(self._datasets)
            raise ProtocolError(
                f"unknown dataset {name!r}; registered: {known}"
            )
        return entry

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._datasets))

    def drop(self, name: str) -> None:
        self._datasets.pop(name, None)

    def fingerprints(self) -> Tuple[str, ...]:
        """Fingerprints currently reachable through a name."""
        return tuple(d.fingerprint for d in self._datasets.values())


@dataclass
class CacheStats:
    """Artifact-cache accounting (exposed through service stats)."""

    index_builds: int = 0
    index_hits: int = 0
    result_hits: int = 0
    result_entries: int = 0
    evictions: int = 0


class ArtifactCache:
    """Fingerprint-keyed caches for indexes and pure query results.

    ``index_for`` serves a built :class:`~repro.index.DatasetIndex`
    keyed by ``(fingerprint, kind, band, window, step, normalize)``;
    ``get_result``/``put_result`` memoise whole answers keyed by the
    request's content (fingerprint + op + canonical parameters +
    query hash).  Both are LRU-bounded.  :meth:`retain_only` drops
    every entry whose fingerprint is no longer registered -- the
    invalidation hook the service calls after (re-)registration.
    """

    def __init__(self, max_indexes: int = 32, max_results: int = 256):
        if max_indexes < 1 or max_results < 1:
            raise ValueError("cache bounds must be >= 1")
        self._indexes: "OrderedDict[tuple, DatasetIndex]" = OrderedDict()
        self._results: "OrderedDict[tuple, Any]" = OrderedDict()
        self._max_indexes = max_indexes
        self._max_results = max_results
        self.stats = CacheStats()

    # -- indexes -----------------------------------------------------------

    def index_for(
        self,
        dataset: RegisteredDataset,
        band: int,
        window: Optional[int] = None,
        step: int = 1,
        normalize: bool = True,
    ) -> DatasetIndex:
        """The dataset's index for these parameters, built at most once.

        Collections build a ``kind="collection"`` index (raw series --
        what the 1-NN consumers verify against); streams build a
        ``kind="windows"`` index of their sliding windows.
        """
        if dataset.kind == "collection":
            key = (dataset.fingerprint, "collection", band)
        else:
            key = (
                dataset.fingerprint, "windows", band, window, step,
                normalize,
            )
        index = self._indexes.get(key)
        if index is not None:
            self._indexes.move_to_end(key)
            self.stats.index_hits += 1
            return index
        if dataset.kind == "collection":
            index = build_index(list(dataset.series), band=band)
        else:
            index = build_stream_index(
                list(dataset.stream), window=window, band=band,
                step=step, normalize=normalize,
            )
        self._indexes[key] = index
        self.stats.index_builds += 1
        while len(self._indexes) > self._max_indexes:
            self._indexes.popitem(last=False)
            self.stats.evictions += 1
        return index

    # -- memoised results --------------------------------------------------

    def get_result(self, key: tuple):
        """The cached answer for ``key``, or ``None`` (counts a hit)."""
        value = self._results.get(key)
        if value is not None:
            self._results.move_to_end(key)
            self.stats.result_hits += 1
        return value

    def peek_result(self, key: tuple) -> bool:
        """Is ``key`` memoised?  (No hit counted, no LRU touch.)"""
        return key in self._results

    def put_result(self, key: tuple, value) -> None:
        self._results[key] = value
        self.stats.result_entries = len(self._results)
        while len(self._results) > self._max_results:
            self._results.popitem(last=False)
            self.stats.evictions += 1
            self.stats.result_entries = len(self._results)

    # -- invalidation ------------------------------------------------------

    def retain_only(self, fingerprints) -> int:
        """Drop entries for unreachable fingerprints; return the count.

        Every cache key leads with the fingerprint, so content
        invalidation is one sweep: after a name is re-registered with
        new values, the old content's artifacts become unreachable and
        are reclaimed here.
        """
        keep = set(fingerprints)
        dropped = 0
        for cache in (self._indexes, self._results):
            for key in [k for k in cache if k[0] not in keep]:
                del cache[key]
                dropped += 1
        self.stats.result_entries = len(self._results)
        return dropped

    def clear(self) -> None:
        self._indexes.clear()
        self._results.clear()
        self.stats.result_entries = 0
