"""Latency-budgeted micro-batching for the asyncio front door.

Window semantics: the first request to arrive while the batcher is
idle *opens* a collection window of ``window_ms`` milliseconds; every
request submitted before it elapses joins the same batch (bounded by
``max_batch`` -- overflow rolls into the next window).  When the
window closes, the whole batch executes as **one**
:meth:`~repro.serve.service.QueryService.execute_batch` call on a
worker thread, and each submitter's future resolves with its own
response.  The trade is explicit and configurable: a request waits at
most ``window_ms`` for batch-mates in exchange for coalesced
execution (one lock acquisition, one warm-pool dispatch, fused
same-dataset 1-NN jobs).

Execution is strictly one batch at a time -- ``repro.obs`` traces are
process-global, so batches never interleave; while one runs, new
arrivals accumulate into the next window.

Error isolation: per-request failures come back as ``ok=False``
responses from the service (never exceptions); only a failure of the
batch machinery itself rejects the in-flight futures.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, List, Mapping, Sequence, Tuple, Union

from .protocol import QueryRequest, QueryResponse

__all__ = ["MicroBatcher"]

RawRequest = Union[QueryRequest, Mapping[str, Any]]


class MicroBatcher:
    """Coalesce concurrent submissions into service-sized batches.

    Parameters
    ----------
    runner:
        The synchronous batch executor -- normally a bound
        :meth:`QueryService.execute_batch`.  Called on a worker
        thread with a list of requests; must return one response per
        request, in order.
    window_ms:
        Collection window in milliseconds (the per-request latency
        budget; 2-10 ms is the intended range).
    max_batch:
        Ceiling on requests per executed batch.
    """

    def __init__(
        self,
        runner: Callable[[List[RawRequest]], Sequence[QueryResponse]],
        window_ms: float = 5.0,
        max_batch: int = 64,
    ):
        if window_ms < 0:
            raise ValueError("window_ms must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._runner = runner
        self._window = window_ms / 1000.0
        self._max_batch = max_batch
        self._pending: List[Tuple[RawRequest, "asyncio.Future"]] = []
        self._drainer: "asyncio.Task | None" = None
        self._closed = False
        self.batches = 0
        self.requests = 0
        self.largest_batch = 0

    async def submit(self, request: RawRequest) -> QueryResponse:
        """Queue one request; resolves when its batch has executed."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._pending.append((request, future))
        self.requests += 1
        if self._drainer is None or self._drainer.done():
            self._drainer = loop.create_task(self._drain())
        return await future

    async def _drain(self) -> None:
        """Run windows until the queue is empty (one batch at a time)."""
        while self._pending:
            if self._window > 0:
                await asyncio.sleep(self._window)
            else:  # window 0: still yield once so peers can enqueue
                await asyncio.sleep(0)
            batch = self._pending[: self._max_batch]
            del self._pending[: len(batch)]
            if not batch:
                continue
            requests = [request for request, _ in batch]
            try:
                responses = await asyncio.to_thread(
                    self._runner, requests
                )
                if len(responses) != len(requests):
                    raise RuntimeError(
                        "runner returned "
                        f"{len(responses)} responses for "
                        f"{len(requests)} requests"
                    )
            except BaseException as exc:
                for _, future in batch:
                    if not future.done():
                        future.set_exception(
                            RuntimeError(f"batch execution failed: {exc}")
                        )
                continue
            self.batches += 1
            self.largest_batch = max(self.largest_batch, len(batch))
            for (_, future), response in zip(batch, responses):
                if not future.done():
                    future.set_result(response)

    async def close(self) -> None:
        """Refuse new submissions, then drain everything in flight."""
        self._closed = True
        while self._drainer is not None and not self._drainer.done():
            await asyncio.shield(self._drainer)

    @property
    def closed(self) -> bool:
        return self._closed
