"""Request/response vocabulary of the query service.

One request = one mapping (a parsed JSON object on the wire, or a
plain dict in-process) naming an **op**, a registered **dataset** and
the op's parameters.  :func:`parse_request` is the single validation
point: every entry path -- the in-process :class:`~repro.serve.service.
QueryService` API, the micro-batcher and the socket server -- funnels
through it, so a malformed request is refused identically everywhere,
before any work is scheduled.

Ops (mirroring the consumer entry points they execute through):

==============  ========================================================
``1nn``         :func:`repro.search.nearest_neighbor` over a registered
                collection (``band`` required, ``query`` required)
``knn``         the ``k`` nearest collection series by exact cDTW,
                ordered by ``(distance, index)`` -- the package-wide
                first-wins tie rule
``subsequence`` :func:`repro.search.subsequence_search` (or ``_topk``
                when ``k > 1``) over a registered stream
``discord``     :func:`repro.anomaly.find_discord` over a stream
                (no ``query``: the stream is its own workload)
``motif``       :func:`repro.motifs.find_motif` over a stream
==============  ========================================================

Responses carry the op's answer plus per-request :class:`Telemetry`
derived from a request-scoped :class:`repro.obs.RunTrace` snapshot:
``dtw_calls`` is the trace's ``dp.calls`` (DP invocations actually
run -- the paper's accounting unit), ``dp_cells`` its ``dp.cells``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "OPS",
    "ProtocolError",
    "QueryRequest",
    "QueryResponse",
    "Telemetry",
    "parse_request",
]

OPS = ("1nn", "knn", "subsequence", "discord", "motif")

#: ops that take a query series (the others work the stream itself)
_QUERY_OPS = ("1nn", "knn", "subsequence")

#: recognised parameter names per op, beyond ``op``/``dataset``/
#: ``query``/``id`` (``index`` is a per-request override of the
#: service's index fast-path setting; ``rle`` forces the
#: compressed-domain routing on or off for this request)
_PARAMS = {
    "1nn": ("band", "index", "rle"),
    "knn": ("band", "k", "rle"),
    "subsequence": ("band", "k", "step", "normalize", "exclusion",
                    "index"),
    "discord": ("window", "band", "step", "exclusion", "normalize",
                "index"),
    "motif": ("window", "band", "step", "exclusion", "normalize",
              "index"),
}


class ProtocolError(ValueError):
    """A request that cannot be executed as stated."""


@dataclass(frozen=True)
class QueryRequest:
    """One validated query (see the module notes for the op table)."""

    op: str
    dataset: str
    #: flat float tuple, or a tuple of per-sample float tuples for
    #: multivariate queries
    query: Optional[Tuple[Any, ...]] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    id: Optional[str] = None

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)


@dataclass(frozen=True)
class Telemetry:
    """Per-request accounting, reconcilable with ``repro.obs``.

    ``dtw_calls``/``dp_cells`` are exact per-request shares: summing
    them over every response a service produced equals the service's
    aggregated trace counters (the self-test asserts this).
    ``batched_with`` is the size of the micro-batch the request rode
    in (1 = executed alone); ``index_builds`` counts index artifacts
    built *during* this request (0 = served from the artifact cache);
    ``cached`` marks a result served from the result cache.
    """

    latency_ms: float
    dtw_calls: int
    dp_cells: int
    batched_with: int = 1
    index_builds: int = 0
    cached: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "latency_ms": round(self.latency_ms, 3),
            "dtw_calls": self.dtw_calls,
            "dp_cells": self.dp_cells,
            "batched_with": self.batched_with,
            "index_builds": self.index_builds,
            "cached": self.cached,
        }


@dataclass(frozen=True)
class QueryResponse:
    """One request's outcome: an answer or an error, never both."""

    op: str
    dataset: str
    ok: bool
    answer: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    telemetry: Optional[Telemetry] = None
    id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "op": self.op, "dataset": self.dataset, "ok": self.ok,
        }
        if self.id is not None:
            out["id"] = self.id
        if self.ok:
            out["answer"] = self.answer
        else:
            out["error"] = self.error
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.to_dict()
        return out


def _as_series(value: Any) -> Tuple[Any, ...]:
    """Canonicalise a query: flat floats, or nested vector samples.

    A multivariate query arrives as a sequence of equal-length number
    sequences (one ``(length, dims)`` sample per row) and comes back
    as a tuple of float tuples -- exactly the sample shape registered
    multivariate datasets hold.
    """
    try:
        items = list(value)
    except TypeError:
        raise ProtocolError("query must be a sequence of numbers")
    if not items:
        raise ProtocolError("query must not be empty")
    if isinstance(items[0], (tuple, list)):
        dims = len(items[0])
        if dims == 0:
            raise ProtocolError("query samples must not be empty")
        samples = []
        for i, sample in enumerate(items):
            if not isinstance(sample, (tuple, list)) or len(sample) != dims:
                raise ProtocolError(
                    f"query sample {i} does not have {dims} components;"
                    " a multivariate query is a sequence of equal-"
                    "length number sequences"
                )
            try:
                samples.append(tuple(float(c) for c in sample))
            except (TypeError, ValueError):
                raise ProtocolError(
                    f"query sample {i} must contain only numbers"
                )
        return tuple(samples)
    try:
        return tuple(float(v) for v in items)
    except (TypeError, ValueError):
        raise ProtocolError("query must be a sequence of numbers")


def _positive_int(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{name} must be an int, got {value!r}")
    if value < 1:
        raise ProtocolError(f"{name} must be >= 1, got {value!r}")
    return value


def parse_request(obj: Mapping[str, Any]) -> QueryRequest:
    """Validate one raw request mapping into a :class:`QueryRequest`.

    Raises :class:`ProtocolError` (a ``ValueError``) naming the first
    problem; nothing about the request is executed.
    """
    if not isinstance(obj, Mapping):
        raise ProtocolError("request must be a mapping")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; pick from {OPS}")
    dataset = obj.get("dataset")
    if not isinstance(dataset, str) or not dataset:
        raise ProtocolError("dataset must be a non-empty string")

    allowed = _PARAMS[op]
    params: Dict[str, Any] = {}
    for key, value in obj.items():
        if key in ("op", "dataset", "query", "id"):
            continue
        if key not in allowed:
            raise ProtocolError(
                f"op {op!r} does not take parameter {key!r}; "
                f"recognised: {allowed}"
            )
        params[key] = value

    # per-op requirements, checked here so execution never sees them
    if "band" in params:
        params["band"] = _positive_int(params["band"], "band")
    elif op in ("1nn", "knn", "subsequence"):
        raise ProtocolError(f"op {op!r} requires band")
    if op in ("discord", "motif"):
        if "window" not in params or "band" not in params:
            raise ProtocolError(f"op {op!r} requires window and band")
        params["window"] = _positive_int(params["window"], "window")
    if "k" in params:
        params["k"] = _positive_int(params["k"], "k")
    if "step" in params:
        params["step"] = _positive_int(params["step"], "step")
    if "exclusion" in params and params["exclusion"] is not None:
        params["exclusion"] = _positive_int(
            params["exclusion"], "exclusion"
        )
    for flag in ("normalize", "index", "rle"):
        if flag in params and not isinstance(params[flag], bool):
            raise ProtocolError(f"{flag} must be a bool")

    query = None
    if op in _QUERY_OPS:
        if "query" not in obj:
            raise ProtocolError(f"op {op!r} requires a query series")
        query = _as_series(obj["query"])
    elif obj.get("query") is not None:
        raise ProtocolError(f"op {op!r} does not take a query")

    request_id = obj.get("id")
    if request_id is not None and not isinstance(request_id, str):
        request_id = str(request_id)
    return QueryRequest(
        op=op, dataset=dataset, query=query, params=params,
        id=request_id,
    )
