"""The paper's Table 1 as an executable decision procedure."""

from .cases import (
    Case,
    CaseAnalysis,
    Recommendation,
    analyze,
    classify_case,
    estimate_warping_amount,
)

__all__ = [
    "Case",
    "CaseAnalysis",
    "Recommendation",
    "analyze",
    "classify_case",
    "estimate_warping_amount",
]
