"""Table 1 of the paper, executable: classify (N, W) and recommend.

The paper partitions similarity-measurement settings by series length
``N`` (short/long around 1,000) and natural warping amount ``W``
(narrow/wide around 20% of ``N``):

=========  =========  ==========================================
Case       (N, W)     Paper's verdict
=========  =========  ==========================================
A          short/narrow  cDTW, unambiguously (99% of real uses)
B          long/narrow   cDTW (music alignment experiment)
C          short/wide    cDTW (power-demand experiment)
D          long/wide     no known real application; only here can
                         FastDTW ever be faster, and it is still
                         approximate
=========  =========  ==========================================

:func:`analyze` also *measures* ``W`` from sample data when the user
does not know it, by aligning example pairs with Full DTW and taking
the maximal band deviation -- the procedure the paper applies to the
power-demand pair (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

from ..core.dtw import dtw

#: The paper's (soft) boundaries between the quadrants.
LONG_N_THRESHOLD = 1000
WIDE_W_THRESHOLD = 0.20


class Case(str, Enum):
    """The four quadrants of Table 1."""

    A = "A"  # short N, narrow W
    B = "B"  # long N, narrow W
    C = "C"  # short N, wide W
    D = "D"  # long N, wide W


class Recommendation(str, Enum):
    """Which algorithm the paper's evidence supports."""

    CDTW = "cDTW"
    CDTW_FULL = "cDTW (unconstrained; consider the tradeoff only at very large N)"


_EXAMPLES = {
    Case.A: (
        "heartbeats, gestures, signatures, golf swings, gene expressions, "
        "gait cycles, star-light-curves, sign language, bird song"
    ),
    Case.B: "music performance, classical dance performance, seismic data",
    Case.C: "residential electrical power demand",
    Case.D: "<no obvious applications>",
}

_RATIONALE = {
    Case.A: (
        "cDTW evaluates ~N*(2wN+1) cells which, for short N and narrow w, "
        "is far fewer than FastDTW's ~N*(8r+14) plus recursion overhead; "
        "the original FastDTW authors also recommend cDTW here."
    ),
    Case.B: (
        "narrow W keeps the band tiny even for long N (the paper's music "
        "experiment: cDTW at 45.6 ms vs FastDTW_10 at 238.2 ms for "
        "N=24,000, w=0.83%)."
    ),
    Case.C: (
        "short N makes even a wide band cheap; FastDTW's overhead exceeds "
        "computing DTW directly (Fig. 4 and the smart-glove study [23])."
    ),
    Case.D: (
        "the only quadrant where FastDTW can be faster (beyond N~400 at "
        "w=100%, Fig. 6) -- but no real application is known, the result "
        "is approximate, and repeated-use tricks still favour exact cDTW."
    ),
}


@dataclass(frozen=True)
class CaseAnalysis:
    """Outcome of :func:`analyze`.

    Attributes
    ----------
    case:
        The Table 1 quadrant.
    n:
        Series length analysed.
    warping:
        The ``W`` used (given or measured), as a fraction of ``N``.
    recommendation:
        The paper's verdict for this quadrant.
    examples:
        The paper's example domains for this quadrant.
    rationale:
        One-paragraph justification, citing the paper's experiments.
    """

    case: Case
    n: int
    warping: float
    recommendation: Recommendation
    examples: str
    rationale: str

    def recommended_window(self, margin: float = 0.25) -> float:
        """A concrete cDTW window for this task: ``W`` plus a margin.

        The window must cover the natural warping (or alignments get
        truncated) but not much more (or accuracy degrades and work
        grows -- Ratanamahatana's observation).  ``margin`` is the
        relative headroom over the measured/declared ``W``; the result
        is clipped to [0, 1] and floored at one cell's worth.

        >>> analyze(n=450, warping=0.34).recommended_window() < 0.5
        True
        """
        if margin < 0:
            raise ValueError("margin must be non-negative")
        w = min(1.0, self.warping * (1.0 + margin))
        return max(w, 1.0 / self.n)

    def describe(self) -> str:
        """Multi-line human-readable report."""
        return (
            f"Case {self.case.value}: N={self.n} "
            f"({'long' if self.n >= LONG_N_THRESHOLD else 'short'}), "
            f"W={self.warping:.1%} "
            f"({'wide' if self.warping >= WIDE_W_THRESHOLD else 'narrow'})\n"
            f"Recommendation: {self.recommendation.value} "
            f"with w ~ {self.recommended_window():.1%}\n"
            f"Known domains: {self.examples}\n"
            f"Why: {self.rationale}"
        )


def classify_case(
    n: int,
    warping: float,
    long_threshold: int = LONG_N_THRESHOLD,
    wide_threshold: float = WIDE_W_THRESHOLD,
) -> Case:
    """Map ``(N, W)`` to its Table 1 quadrant.

    >>> classify_case(945, 0.04)
    <Case.A: 'A'>
    >>> classify_case(24000, 0.0083)
    <Case.B: 'B'>
    >>> classify_case(450, 0.40)
    <Case.C: 'C'>
    >>> classify_case(5000, 1.0)
    <Case.D: 'D'>
    """
    if n < 1:
        raise ValueError("N must be positive")
    if not 0.0 <= warping <= 1.0:
        raise ValueError("warping must be a fraction in [0, 1]")
    long_n = n >= long_threshold
    wide_w = warping >= wide_threshold
    if long_n:
        return Case.D if wide_w else Case.B
    return Case.C if wide_w else Case.A


def estimate_warping_amount(
    pairs: Sequence[tuple], cost: str = "squared",
) -> float:
    """Measure ``W`` from sample pairs the way the paper does.

    Aligns each ``(x, y)`` pair with Full DTW and returns the largest
    band deviation seen, as a fraction of the longer series.  This is
    the empirical counterpart of the paper's peak-offset estimate for
    the power data (34%) and an upper bound on the window any of these
    pairs needs.
    """
    if not pairs:
        raise ValueError("need at least one sample pair")
    worst = 0.0
    for x, y in pairs:
        path = dtw(x, y, cost=cost, return_path=True).path
        worst = max(worst, path.warp_fraction())
    return worst


def analyze(
    n: Optional[int] = None,
    warping: Optional[float] = None,
    sample_pairs: Optional[Sequence[tuple]] = None,
) -> CaseAnalysis:
    """Classify a task and recommend an algorithm.

    Provide either explicit ``n`` and ``warping``, or ``sample_pairs``
    of representative series (from which both are measured).

    >>> analyze(n=300, warping=0.05).recommendation
    <Recommendation.CDTW: 'cDTW'>
    """
    if sample_pairs is not None:
        if warping is None:
            warping = estimate_warping_amount(sample_pairs)
        if n is None:
            n = max(
                max(len(x), len(y)) for x, y in sample_pairs
            )
    if n is None or warping is None:
        raise ValueError(
            "provide n= and warping=, or sample_pairs= to measure them"
        )
    case = classify_case(n, warping)
    rec = Recommendation.CDTW_FULL if case is Case.D else Recommendation.CDTW
    return CaseAnalysis(
        case=case,
        n=n,
        warping=warping,
        recommendation=rec,
        examples=_EXAMPLES[case],
        rationale=_RATIONALE[case],
    )
