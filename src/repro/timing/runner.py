"""Experiment runners: parameter sweeps over pairwise comparisons.

The paper's Figs. 1 and 4 share one experimental shape: fix a dataset,
sweep a parameter (``w`` for cDTW, ``r`` for FastDTW), and for each
setting report the cumulative time of all pairwise comparisons.  At
laptop scale we time a sample of pairs per setting and extrapolate to
the full pair count (valid: comparisons are independent and identically
sized; the full-scale pair counts are recorded in each experiment's
``PAPER_SCALE`` config).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

DistanceFn = Callable[[Sequence[float], Sequence[float]], object]

#: The only kernel backend the paper-reproduction timing harness will
#: run.  The paper's claim is "same language, same hardware": FastDTW
#: and cDTW must both be timed on the pure-Python engine, so this
#: harness refuses the vectorised backends outright instead of
#: consulting the :mod:`repro.core.kernels` process default.
PINNED_BACKEND = "python"


@dataclass(frozen=True)
class SweepPoint:
    """One parameter setting of a sweep.

    Attributes
    ----------
    algorithm:
        ``"cDTW"`` or ``"FastDTW"`` (or any label the caller chose).
    param:
        The swept parameter value (window fraction or radius).
    per_pair_seconds:
        Mean wall-clock seconds per comparison at this setting.
    per_pair_cells:
        Mean DP cells per comparison (0 if the result lacks ``cells``).
    pairs_measured:
        Number of comparisons actually timed.
    """

    algorithm: str
    param: float
    per_pair_seconds: float
    per_pair_cells: float
    pairs_measured: int

    def total_seconds(self, pair_count: int) -> float:
        """Extrapolated total for ``pair_count`` comparisons."""
        return self.per_pair_seconds * pair_count


@dataclass(frozen=True)
class PairwiseResult:
    """Measured cost of all-pairs comparisons at one setting."""

    pairs: int
    seconds: float
    cells: int

    @property
    def per_pair_seconds(self) -> float:
        return self.seconds / self.pairs if self.pairs else 0.0


def pairwise_experiment(
    series: Sequence[Sequence[float]],
    fn: DistanceFn,
    max_pairs: int = 0,
) -> PairwiseResult:
    """Time ``fn`` over (a sample of) all unordered pairs of ``series``.

    Parameters
    ----------
    series:
        At least two series.
    fn:
        Distance callable; if its result has a ``cells`` attribute it
        is accumulated.
    max_pairs:
        Cap on pairs to time (0 = all ``k*(k-1)/2``).  Pairs are taken
        in deterministic lexicographic order.
    """
    if len(series) < 2:
        raise ValueError("need at least two series")
    pairs = itertools.combinations(range(len(series)), 2)
    if max_pairs:
        pairs = itertools.islice(pairs, max_pairs)
    count = 0
    cells = 0
    start = time.perf_counter()
    for i, j in pairs:
        result = fn(series[i], series[j])
        cells += getattr(result, "cells", 0)
        count += 1
    seconds = time.perf_counter() - start
    return PairwiseResult(pairs=count, seconds=seconds, cells=cells)


@dataclass(frozen=True)
class BatchTimingResult:
    """Measured cost of one batched all-pairs run.

    Unlike :class:`PairwiseResult` (which times one serial distance
    call after another), this times a whole :mod:`repro.batch` job --
    including pool start-up and result marshalling -- so serial and
    parallel wall-clocks are comparable end to end.  ``cells`` is the
    engine's merged DP-cell provenance, which is identical for any
    worker count.
    """

    pairs: int
    seconds: float
    cells: int
    workers: int

    @property
    def per_pair_seconds(self) -> float:
        return self.seconds / self.pairs if self.pairs else 0.0

    def speedup_over(self, other: "BatchTimingResult") -> float:
        """How many times faster this run was than ``other``."""
        if self.seconds == 0:
            return float("inf")
        return other.seconds / self.seconds


def batch_pairwise_experiment(
    series: Sequence[Sequence[float]],
    measure: str = "cdtw",
    window: Optional[float] = None,
    band: Optional[int] = None,
    radius: int = 1,
    cost: str = "squared",
    workers: int = 1,
    max_pairs: int = 0,
    backend: str = PINNED_BACKEND,
) -> BatchTimingResult:
    """Time all-pairs comparisons as one batch-engine job.

    Parameters mirror :func:`repro.core.matrix.distance_matrix`;
    ``max_pairs`` caps the pair count (0 = all, lexicographic order).
    The distances and cell totals are ``workers``-invariant, so runs
    with different worker counts measure the same computation.

    ``backend`` exists only so the pin is explicit at the call site:
    anything other than :data:`PINNED_BACKEND` raises.  Benchmark the
    vectorised backends with ``python -m repro kernels``
    (:mod:`repro.timing.kernel_bench`), which is not a
    paper-reproduction artefact.
    """
    from ..batch.engine import all_pairs, batch_distances

    if backend != PINNED_BACKEND:
        raise ValueError(
            f"the paper timing harness is pinned to backend="
            f"{PINNED_BACKEND!r} ('same language, same hardware'); "
            f"got {backend!r} -- use repro.timing.kernel_bench for "
            "cross-backend numbers"
        )
    if len(series) < 2:
        raise ValueError("need at least two series")
    pairs = all_pairs(len(series))
    if max_pairs:
        pairs = pairs[:max_pairs]
    from ..runtime import Runtime

    start = time.perf_counter()
    # an explicit Runtime is a complete statement of the execution
    # context: it ignores the process default and environment seeding,
    # so nothing outside this call site can unpin the backend
    result = batch_distances(
        series, pairs=pairs, measure=measure, window=window, band=band,
        radius=radius, cost=cost,
        runtime=Runtime(workers=workers, backend=PINNED_BACKEND),
    )
    seconds = time.perf_counter() - start
    return BatchTimingResult(
        pairs=len(result),
        seconds=seconds,
        cells=result.cells,
        workers=workers,
    )


def sweep(
    series: Sequence[Sequence[float]],
    algorithm: str,
    params: Sequence[float],
    make_fn: Callable[[float], DistanceFn],
    max_pairs: int = 0,
) -> List[SweepPoint]:
    """Run :func:`pairwise_experiment` across parameter settings.

    ``make_fn(param)`` builds the distance callable for each setting.
    Returns one :class:`SweepPoint` per parameter, in order.
    """
    if not params:
        raise ValueError("no parameters to sweep")
    points: List[SweepPoint] = []
    for p in params:
        res = pairwise_experiment(series, make_fn(p), max_pairs=max_pairs)
        points.append(
            SweepPoint(
                algorithm=algorithm,
                param=p,
                per_pair_seconds=res.per_pair_seconds,
                per_pair_cells=res.cells / res.pairs if res.pairs else 0.0,
                pairs_measured=res.pairs,
            )
        )
    return points


def find_crossover(
    params: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> Tuple[float, float]:
    """First param where ``series_b``'s value drops below ``series_a``'s.

    Generic helper for crossover experiments (e.g. Fig. 6: the first
    ``L`` where FastDTW becomes faster than Full DTW).  ``series_a``
    and ``series_b`` are per-param measurements aligned with
    ``params``.  Returns ``(param, ratio_b_over_a)``; raises
    ``ValueError`` if no crossover occurs.
    """
    if not (len(params) == len(series_a) == len(series_b)):
        raise ValueError("params and measurements must align")
    for p, a, b in zip(params, series_a, series_b):
        if b < a:
            return p, (b / a if a else float("inf"))
    raise ValueError("no crossover within the swept range")
