"""Phase-level profiling of FastDTW: where its time actually goes.

FastDTW's cost has three components per recursion level -- coarsening,
window construction (projection + dilation), and the windowed DP.  The
cell-count model only sees the third; this profiler times all three,
showing how much of the algorithm's slowness is *structural overhead*
invisible to the ``N*(8r+14)`` analysis -- one of the reasons measured
crossovers land far later than the cell model predicts.

The profiler runs the *production* :func:`repro.core.fastdtw.fastdtw`
under a :class:`repro.obs.RunTrace` and reads the per-phase spans the
algorithm itself emits (``fastdtw/coarsen``, ``fastdtw/window``,
``fastdtw/dp``).  An earlier version re-implemented the recursion here
with inline ``perf_counter`` bookkeeping; any change to the real
algorithm could then silently desynchronise the profile from what the
benchmarks actually run.  Profiling the real code path makes the
distance, level count and cell counts match
:func:`~repro.core.fastdtw.fastdtw` bit-for-bit by construction (the
regression suite asserts exactly that).

This module is the one deliberate exception to the "timing harness is
un-instrumented" rule enforced by ``tests/obs/test_harness_pin.py``:
its entire purpose is to observe, so it owns a private trace.  The
wall-clock harness (:mod:`repro.timing.runner`) stays hook-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..core.cost import CostLike
from ..core.fastdtw import fastdtw
from ..obs import RunTrace


@dataclass(frozen=True)
class FastDtwProfile:
    """Per-phase wall-clock breakdown of one FastDTW run (seconds).

    Attributes
    ----------
    coarsen_seconds:
        Time spent halving series across all levels.
    window_seconds:
        Time spent projecting/dilating paths into windows.
    dp_seconds:
        Time in the windowed dynamic programs (including the base
        case) -- the only phase the cell model accounts for.
    distance:
        The run's (approximate) distance; bit-identical to
        :func:`repro.core.fastdtw.fastdtw` on the same inputs.
    levels:
        Recursion levels executed.
    cells:
        Total DP cells across all levels (``FastDtwResult.cells``).
    level_cells:
        Per-level DP cells, coarsest first; sums to ``cells``.
    """

    coarsen_seconds: float
    window_seconds: float
    dp_seconds: float
    distance: float
    levels: int
    cells: int = 0
    level_cells: Tuple[int, ...] = ()

    @property
    def total_seconds(self) -> float:
        return self.coarsen_seconds + self.window_seconds + self.dp_seconds

    def overhead_fraction(self) -> float:
        """Share of time outside the DP (coarsening + windows)."""
        total = self.total_seconds
        if total <= 0:
            return 0.0
        return (self.coarsen_seconds + self.window_seconds) / total


def profile_fastdtw(
    x: Sequence[float],
    y: Sequence[float],
    radius: int = 1,
    cost: CostLike = "squared",
) -> FastDtwProfile:
    """Run FastDTW under a private trace; report its phase spans.

    This *is* :func:`repro.core.fastdtw.fastdtw` -- same call, same
    result object -- observed through the span timers the algorithm
    emits, so the profile can never drift from the algorithm.  The
    private :class:`~repro.obs.RunTrace` stacks over (and is invisible
    to) any trace the caller may have active.
    """
    with RunTrace(label="profile_fastdtw") as trace:
        result = fastdtw(x, y, radius=radius, cost=cost, keep_levels=True)
    return FastDtwProfile(
        coarsen_seconds=trace.span_seconds("fastdtw/coarsen"),
        window_seconds=trace.span_seconds("fastdtw/window"),
        dp_seconds=trace.span_seconds("fastdtw/dp"),
        distance=result.distance,
        levels=len(result.levels),
        cells=result.cells,
        level_cells=tuple(lvl.window_cells for lvl in result.levels),
    )
