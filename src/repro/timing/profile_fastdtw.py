"""Phase-level profiling of FastDTW: where its time actually goes.

FastDTW's cost has three components per recursion level -- coarsening,
window construction (projection + dilation), and the windowed DP.  The
cell-count model only sees the third; this profiler times all three,
showing how much of the algorithm's slowness is *structural overhead*
invisible to the ``N*(8r+14)`` analysis -- one of the reasons measured
crossovers land far later than the cell model predicts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.cost import CostLike
from ..core.dtw import dtw
from ..core.engine import dp_over_window
from ..core.paa import halve
from ..core.validate import validate_pair
from ..core.window import Window


@dataclass(frozen=True)
class FastDtwProfile:
    """Per-phase wall-clock breakdown of one FastDTW run (seconds).

    Attributes
    ----------
    coarsen_seconds:
        Time spent halving series across all levels.
    window_seconds:
        Time spent projecting/dilating paths into windows.
    dp_seconds:
        Time in the windowed dynamic programs (including the base
        case) -- the only phase the cell model accounts for.
    distance:
        The run's (approximate) distance, for sanity checks.
    levels:
        Recursion levels executed.
    """

    coarsen_seconds: float
    window_seconds: float
    dp_seconds: float
    distance: float
    levels: int

    @property
    def total_seconds(self) -> float:
        return self.coarsen_seconds + self.window_seconds + self.dp_seconds

    def overhead_fraction(self) -> float:
        """Share of time outside the DP (coarsening + windows)."""
        total = self.total_seconds
        if total <= 0:
            return 0.0
        return (self.coarsen_seconds + self.window_seconds) / total


def profile_fastdtw(
    x: Sequence[float],
    y: Sequence[float],
    radius: int = 1,
    cost: CostLike = "squared",
) -> FastDtwProfile:
    """Run (optimised) FastDTW with per-phase timers.

    Algorithmically identical to :func:`repro.core.fastdtw.fastdtw`
    (same recursion, same windows); only the bookkeeping differs, so
    the distance matches exactly.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    validate_pair(x, y)

    timers = {"coarsen": 0.0, "window": 0.0, "dp": 0.0}
    levels = [0]

    def rec(xs: List[float], ys: List[float]):
        levels[0] += 1
        n, m = len(xs), len(ys)
        if n <= radius + 2 or m <= radius + 2:
            start = time.perf_counter()
            base = dtw(xs, ys, cost=cost, return_path=True)
            timers["dp"] += time.perf_counter() - start
            return base

        start = time.perf_counter()
        sx, sy = halve(xs), halve(ys)
        timers["coarsen"] += time.perf_counter() - start

        coarse = rec(sx, sy)

        start = time.perf_counter()
        window = Window.expand_path(coarse.path, n, m, radius)
        timers["window"] += time.perf_counter() - start

        start = time.perf_counter()
        refined = dp_over_window(xs, ys, window, cost=cost,
                                 return_path=True)
        timers["dp"] += time.perf_counter() - start
        return refined

    result = rec([float(v) for v in x], [float(v) for v in y])
    return FastDtwProfile(
        coarsen_seconds=timers["coarsen"],
        window_seconds=timers["window"],
        dp_seconds=timers["dp"],
        distance=result.distance,
        levels=levels[0],
    )
