"""Wall-clock measurement with repeats and robust summaries.

The paper measures "by running each algorithm 1,000 times and
reporting the average".  Full-scale repetition is not laptop-friendly
for a pure-Python DP, so :func:`time_callable` takes configurable
repeats and :func:`extrapolate` scales a per-call measurement up to the
paper's experiment sizes (e.g. 400,960 pairwise comparisons for
Fig. 1), which is valid because each comparison is independent and
identically sized.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence


#: Summary statistics :meth:`Timing.value` understands.
STATISTICS = ("mean", "median", "minimum")


@dataclass(frozen=True)
class Timing:
    """Summary of repeated wall-clock measurements (seconds)."""

    repeats: int
    mean: float
    median: float
    minimum: float
    total: float

    def value(self, statistic: str = "mean") -> float:
        """The summary named by ``statistic`` (seconds).

        ``"mean"`` is the paper's convention ("running each algorithm
        1,000 times and reporting the average"); ``"median"`` is robust
        to one-off GC pauses; ``"minimum"`` is the classic
        least-noise micro-benchmark summary.
        """
        if statistic not in STATISTICS:
            raise ValueError(
                f"unknown statistic {statistic!r}; pick from {STATISTICS}"
            )
        return getattr(self, statistic)

    def per_call_ms(self, statistic: str = "mean") -> float:
        """Per-call time in milliseconds under ``statistic``.

        Defaults to the mean, matching the paper's reporting
        convention.  An earlier version silently returned the median
        while the surrounding reports were captioned as averages;
        callers that *want* the robust summary now say
        ``per_call_ms("median")`` explicitly.
        """
        return self.value(statistic) * 1000.0


def time_callable(
    fn: Callable[[], object], repeats: int = 5, warmup: int = 1,
) -> Timing:
    """Time ``fn()`` ``repeats`` times after ``warmup`` discarded calls.

    Uses :func:`time.perf_counter`.  The callable's return value is
    kept alive during the call (so lazily evaluated work is included)
    but discarded afterwards.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    ordered = sorted(samples)
    mid = len(ordered) // 2
    median = (
        ordered[mid]
        if len(ordered) % 2
        else (ordered[mid - 1] + ordered[mid]) / 2
    )
    return Timing(
        repeats=repeats,
        mean=sum(samples) / len(samples),
        median=median,
        minimum=ordered[0],
        total=sum(samples),
    )


def extrapolate(per_call_seconds: float, calls: int) -> float:
    """Projected total seconds for ``calls`` independent calls.

    This is the footnote-2 arithmetic: FastDTW_10 at 0.1845 ms per
    N=128 comparison implies 10^12 comparisons take 5.8 years.
    """
    if per_call_seconds < 0 or calls < 0:
        raise ValueError("need non-negative inputs")
    return per_call_seconds * calls


def seconds_to_human(seconds: float) -> str:
    """Render a duration at the paper's scales (ms up to years).

    >>> seconds_to_human(0.0456)
    '45.6 ms'
    >>> seconds_to_human(5.8 * 365.25 * 86400)
    '5.8 years'
    """
    if seconds < 0:
        raise ValueError("negative duration")
    if seconds < 1.0:
        return f"{seconds * 1000:.1f} ms"
    if seconds < 120:
        return f"{seconds:.1f} s"
    if seconds < 7200:
        return f"{seconds / 60:.1f} minutes"
    if seconds < 86400:
        return f"{seconds / 3600:.1f} hours"
    if seconds < 86400 * 365.25:
        return f"{seconds / 86400:.1f} days"
    return f"{seconds / (86400 * 365.25):.1f} years"
