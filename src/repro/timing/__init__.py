"""Measurement harness: wall-clock timing and cell-count cost models."""

from .cells import (
    cdtw_cell_model,
    crossover_band,
    crossover_length,
    fastdtw_cell_model,
)
from .kernel_bench import kernel_benchmark
from .runner import (
    PINNED_BACKEND,
    BatchTimingResult,
    PairwiseResult,
    SweepPoint,
    batch_pairwise_experiment,
    find_crossover,
    pairwise_experiment,
    sweep,
)
from .timer import Timing, extrapolate, seconds_to_human, time_callable

__all__ = [
    "BatchTimingResult",
    "PINNED_BACKEND",
    "PairwiseResult",
    "SweepPoint",
    "Timing",
    "batch_pairwise_experiment",
    "kernel_benchmark",
    "cdtw_cell_model",
    "crossover_band",
    "crossover_length",
    "extrapolate",
    "fastdtw_cell_model",
    "find_crossover",
    "pairwise_experiment",
    "seconds_to_human",
    "sweep",
    "time_callable",
]
