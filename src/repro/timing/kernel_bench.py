"""Cross-backend kernel micro-benchmark (NOT a paper artefact).

The paper's own timing harness (:mod:`repro.timing.runner`) is pinned
to the pure-Python engine: its claim is "same language, same
hardware".  This module is the opposite tool -- it measures how much
faster the repeated-use stack gets when the :mod:`repro.core.kernels`
``"numpy"`` backend is allowed, on a fixed random-walk workload:

* ``python_serial`` -- :func:`repro.batch.engine.batch_distances`
  with ``backend="python"``, ``workers=1`` (the pre-registry
  behaviour of every consumer);
* ``numpy_serial``  -- the same batch with ``backend="numpy"``
  (chunks collapse into stacked wavefront-kernel calls);
* ``numpy_workers`` -- ``backend="numpy"`` fanned over a process
  pool, composing the two speed layers.

All three compute bit-identical distances and DP cell counts (the
result records the check).  ``python -m repro kernels`` runs this and
writes ``BENCH_kernels.json``; ``python -m repro kernels --warm``
runs :func:`executor_benchmark` instead -- the warm-vs-cold pool
comparison for the persistent :class:`repro.batch.executor.
BatchExecutor` -- and writes ``BENCH_batch.json``; ``python -m repro
kernels --nd`` runs :func:`multivariate_benchmark` -- the same
comparison on a ``dims``-channel DTW_D workload -- and writes
``BENCH_multivariate.json``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

#: Workload defaults: the acceptance configuration -- length-1000
#: random walks at a 10% cDTW band.
DEFAULT_LENGTH = 1000
DEFAULT_COUNT = 8
DEFAULT_WINDOW = 0.1

#: ``--smoke`` overrides: small enough for CI, same code paths.
SMOKE_LENGTH = 128
SMOKE_COUNT = 6

#: Channel count for the ``--nd`` multivariate benchmark (a 3-axis
#: accelerometer-style workload).
DEFAULT_DIMS = 3


def _best_of(repeats: int, fn: Callable[[], object]) -> Tuple[float, object]:
    """Best wall-clock of ``repeats`` runs, plus the last value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def kernel_benchmark(
    length: int = DEFAULT_LENGTH,
    count: int = DEFAULT_COUNT,
    window: float = DEFAULT_WINDOW,
    workers: int = 2,
    repeats: int = 3,
    seed: int = 0,
) -> Dict:
    """Time the backends on one all-pairs cDTW workload.

    Parameters
    ----------
    length, count, seed:
        ``count`` random walks of ``length`` samples (deterministic
        for a seed); all ``count * (count - 1) / 2`` pairs are
        computed.
    window:
        cDTW band as a fraction of length.
    workers:
        Pool size for the ``numpy_workers`` row (and for a
        ``python_workers`` reference row).
    repeats:
        Each configuration is run this many times; the best
        wall-clock is reported (standard micro-benchmark practice --
        the minimum is the least noisy estimator).

    Returns
    -------
    dict
        JSON-serialisable report: per-backend timings, speedups over
        ``python_serial``, a single-pair comparison, and the parity
        check (distances/cells bit-identical across backends).
    """
    if count < 2:
        raise ValueError("count must be at least 2")
    if length < 2:
        raise ValueError("length must be at least 2")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    from ..batch.engine import batch_distances
    from ..core.cdtw import cdtw
    from ..core.measures import measure_fn
    from ..datasets.random_walk import random_walks

    series = random_walks(count, length, seed=seed)
    pairs = count * (count - 1) // 2

    def run_batch(backend: str, n_workers: int):
        return batch_distances(
            series, measure="cdtw", window=window,
            backend=backend, workers=n_workers,
        )

    timings: Dict[str, Dict] = {}
    results = {}
    plan = [
        ("python_serial", "python", 1),
        ("numpy_serial", "numpy", 1),
    ]
    if workers > 1:
        plan.append(("python_workers", "python", workers))
        plan.append(("numpy_workers", "numpy", workers))
    for label, backend, n_workers in plan:
        seconds, result = _best_of(
            repeats, lambda b=backend, w=n_workers: run_batch(b, w)
        )
        results[label] = result
        timings[label] = {
            "backend": backend,
            "workers": n_workers,
            "seconds": seconds,
            "per_pair_seconds": seconds / pairs,
        }

    reference = results["python_serial"]
    distances_identical = all(
        r.distances == reference.distances for r in results.values()
    )
    cells_identical = all(
        r.cells_per_pair == reference.cells_per_pair
        for r in results.values()
    )

    # single-pair numbers: what one isolated call gains (less than the
    # batch, which amortises dispatch over stacked pairs)
    x, y = series[0], series[1]
    numpy_fn = measure_fn("cdtw", window=window, backend="numpy")
    py_seconds, py_result = _best_of(
        repeats, lambda: cdtw(x, y, window=window)
    )
    np_seconds, np_result = _best_of(repeats, lambda: numpy_fn(x, y))
    single_identical = (
        py_result.distance == np_result.distance
        and py_result.cells == np_result.cells
    )

    base = timings["python_serial"]["seconds"]
    speedups = {
        label: (base / t["seconds"]) if t["seconds"] > 0 else float("inf")
        for label, t in timings.items()
        if label != "python_serial"
    }

    return {
        "benchmark": "repro.timing.kernel_bench",
        "note": (
            "repeated-use backend comparison; the paper's own timings "
            "are pinned to backend='python' and never run these kernels"
        ),
        "workload": {
            "kind": "random_walk",
            "count": count,
            "length": length,
            "pairs": pairs,
            "window": window,
            "measure": "cdtw",
            "seed": seed,
            "repeats": repeats,
        },
        "timings": timings,
        "speedups_over_python_serial": speedups,
        "single_pair": {
            "python_seconds": py_seconds,
            "numpy_seconds": np_seconds,
            "speedup": (
                py_seconds / np_seconds if np_seconds > 0 else float("inf")
            ),
            "identical": single_identical,
        },
        "parity": {
            "distances_identical": distances_identical,
            "cells_identical": cells_identical,
        },
    }


def multivariate_benchmark(
    length: int = DEFAULT_LENGTH,
    count: int = DEFAULT_COUNT,
    window: float = DEFAULT_WINDOW,
    workers: int = 2,
    repeats: int = 3,
    seed: int = 0,
    dims: int = DEFAULT_DIMS,
) -> Dict:
    """Time the backends on one all-pairs *multivariate* workload.

    The vector twin of :func:`kernel_benchmark`: ``count`` series of
    ``length`` samples with ``dims`` channels each (independent
    random walks interleaved sample-major, the accelerometer shape),
    all pairs under the dependent measure ``cdtw_d``.  The same rows
    are timed -- ``python_serial``, ``numpy_serial`` and, with
    ``workers > 1``, both worker-pool rows -- and the same parity
    gate applies: distances and DP cell counts must be bit-identical
    across every backend/worker combination, which is the CI
    guarantee the ``--nd`` smoke run enforces.
    """
    if count < 2:
        raise ValueError("count must be at least 2")
    if length < 2:
        raise ValueError("length must be at least 2")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if dims < 2:
        raise ValueError("dims must be at least 2")
    from ..batch.engine import batch_distances
    from ..core.measures import measure_fn
    from ..core.multivariate import cdtw_nd, interleave
    from ..datasets.random_walk import random_walks

    # one deterministic scalar walk per (series, channel), interleaved
    # into (length, dims) rows
    channels = random_walks(count * dims, length, seed=seed)
    series = [
        interleave(*channels[i * dims:(i + 1) * dims])
        for i in range(count)
    ]
    pairs = count * (count - 1) // 2

    def run_batch(backend: str, n_workers: int):
        return batch_distances(
            series, measure="cdtw_d", window=window,
            backend=backend, workers=n_workers,
        )

    timings: Dict[str, Dict] = {}
    results = {}
    plan = [
        ("python_serial", "python", 1),
        ("numpy_serial", "numpy", 1),
    ]
    if workers > 1:
        plan.append(("python_workers", "python", workers))
        plan.append(("numpy_workers", "numpy", workers))
    for label, backend, n_workers in plan:
        seconds, result = _best_of(
            repeats, lambda b=backend, w=n_workers: run_batch(b, w)
        )
        results[label] = result
        timings[label] = {
            "backend": backend,
            "workers": n_workers,
            "seconds": seconds,
            "per_pair_seconds": seconds / pairs,
        }

    reference = results["python_serial"]
    distances_identical = all(
        r.distances == reference.distances for r in results.values()
    )
    cells_identical = all(
        r.cells_per_pair == reference.cells_per_pair
        for r in results.values()
    )

    # single-pair numbers: pure-python cdtw_nd vs the stacked kernel
    x, y = series[0], series[1]
    numpy_fn = measure_fn("cdtw_d", window=window, backend="numpy")
    py_seconds, py_result = _best_of(
        repeats, lambda: cdtw_nd(x, y, window=window)
    )
    np_seconds, np_result = _best_of(repeats, lambda: numpy_fn(x, y))
    single_identical = (
        py_result.distance == np_result.distance
        and py_result.cells == np_result.cells
    )

    base = timings["python_serial"]["seconds"]
    speedups = {
        label: (base / t["seconds"]) if t["seconds"] > 0 else float("inf")
        for label, t in timings.items()
        if label != "python_serial"
    }

    return {
        "benchmark": "repro.timing.kernel_bench/multivariate",
        "note": (
            "multivariate (DTW_D) backend comparison; the paper's own "
            "timings are univariate and pinned to backend='python'"
        ),
        "workload": {
            "kind": "interleaved_random_walks",
            "count": count,
            "length": length,
            "dims": dims,
            "pairs": pairs,
            "window": window,
            "measure": "cdtw_d",
            "seed": seed,
            "repeats": repeats,
        },
        "timings": timings,
        "speedups_over_python_serial": speedups,
        "single_pair": {
            "python_seconds": py_seconds,
            "numpy_seconds": np_seconds,
            "speedup": (
                py_seconds / np_seconds if np_seconds > 0 else float("inf")
            ),
            "identical": single_identical,
        },
        "parity": {
            "distances_identical": distances_identical,
            "cells_identical": cells_identical,
        },
    }


def executor_benchmark(
    length: int = DEFAULT_LENGTH,
    count: int = DEFAULT_COUNT,
    window: float = DEFAULT_WINDOW,
    workers: int = 2,
    repeats: int = 3,
    seed: int = 0,
) -> Dict:
    """Warm-vs-cold comparison of the persistent batch executor.

    Times the same all-pairs cDTW workload as
    :func:`kernel_benchmark` through three pool regimes per backend:

    * ``*_serial``       -- ``workers=1``, in-process (the baseline);
    * ``*_workers_cold`` -- the one-shot pool path: every call forks a
      fresh pool and re-ships the dataset (what
      ``BENCH_kernels.json`` measured at 0.85x serial);
    * ``*_workers_warm`` -- a :class:`repro.batch.executor.
      BatchExecutor` primed by one untimed call, so the timed calls
      hit a live pool and a resident shared-memory dataset -- the
      repeated-use regime kNN/LOOCV/k-means actually run in.

    All regimes must produce bit-identical distances and cells (the
    report records the check).  ``cpu_count`` is recorded because the
    parallel rows cannot beat serial on fewer than two cores --
    interpret speedups against it; on a single-core runner the note
    says so explicitly.  ``chunk_stats`` records how the numpy warm
    path exercised the stacked chunk kernels (scheduled chunks,
    kernel calls, shape groups, stacked pairs, pad waste), taken from
    one untimed traced call against the warm executor.
    """
    if count < 2:
        raise ValueError("count must be at least 2")
    if length < 2:
        raise ValueError("length must be at least 2")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    import os

    from ..batch.engine import batch_distances
    from ..batch.executor import BatchExecutor
    from ..datasets.random_walk import random_walks

    series = random_walks(count, length, seed=seed)
    pairs = count * (count - 1) // 2

    def run(backend: str, n_workers: int, executor=None):
        return batch_distances(
            series, measure="cdtw", window=window,
            backend=backend, workers=n_workers, executor=executor,
        )

    timings: Dict[str, Dict] = {}
    results = {}
    executors = []
    chunk_stats: Dict[str, float] = {}
    try:
        for backend in ("python", "numpy"):
            seconds, result = _best_of(
                repeats, lambda b=backend: run(b, 1)
            )
            results[f"{backend}_serial"] = result
            timings[f"{backend}_serial"] = {
                "backend": backend, "workers": 1, "mode": "serial",
                "seconds": seconds,
                "per_pair_seconds": seconds / pairs,
            }
            seconds, result = _best_of(
                repeats, lambda b=backend: run(b, workers)
            )
            results[f"{backend}_workers_cold"] = result
            timings[f"{backend}_workers_cold"] = {
                "backend": backend, "workers": workers,
                "mode": "one-shot pool",
                "seconds": seconds,
                "per_pair_seconds": seconds / pairs,
            }
            exe = BatchExecutor(workers=workers, cap=None)
            executors.append(exe)
            run(backend, workers, executor=exe)  # untimed priming call
            seconds, result = _best_of(
                repeats, lambda b=backend, e=exe: run(b, workers, e)
            )
            results[f"{backend}_workers_warm"] = result
            timings[f"{backend}_workers_warm"] = {
                "backend": backend, "workers": exe.workers,
                "mode": "warm executor",
                "seconds": seconds,
                "per_pair_seconds": seconds / pairs,
            }
            if backend == "numpy":
                # one untimed probed call against the warm executor to
                # record how the chunk-kernel path actually ran
                from ..batch.engine import chunk_probe

                _, chunk_stats = chunk_probe(
                    lambda: run(backend, workers, executor=exe)
                )
    finally:
        for exe in executors:
            exe.shutdown()

    reference = results["python_serial"]
    distances_identical = all(
        r.distances == reference.distances for r in results.values()
    )
    cells_identical = all(
        r.cells_per_pair == reference.cells_per_pair
        for r in results.values()
    )

    base = timings["python_serial"]["seconds"]
    numpy_base = timings["numpy_serial"]["seconds"]
    speedups = {
        label: float(base / t["seconds"])
        if t["seconds"] > 0 else float("inf")
        for label, t in timings.items()
        if label != "python_serial"
    }

    cpu_count = os.cpu_count() or 1
    note = (
        "warm-vs-cold pool comparison for the repeated-use stack; "
        "the paper's own timings are executor-free and pinned to "
        "backend='python'.  Parallel rows need cpu_count >= 2 to "
        "beat serial."
    )
    if cpu_count < 2:
        note += (
            f"  This run had cpu_count={cpu_count}: the worker rows "
            "time-share one core, so warm speedups below 1.0 reflect "
            "the runner, not the chunk-kernel path."
        )

    return {
        "benchmark": "repro.timing.kernel_bench/executor",
        "note": note,
        "cpu_count": cpu_count,
        "workload": {
            "kind": "random_walk",
            "count": count,
            "length": length,
            "pairs": pairs,
            "window": window,
            "measure": "cdtw",
            "seed": seed,
            "repeats": repeats,
            "workers": workers,
        },
        "timings": timings,
        "speedups_over_python_serial": speedups,
        "warm_python_speedup_over_serial": float(
            base / timings["python_workers_warm"]["seconds"]
            if timings["python_workers_warm"]["seconds"] > 0
            else float("inf")
        ),
        "warm_numpy_speedup_over_numpy_serial": float(
            numpy_base / timings["numpy_workers_warm"]["seconds"]
            if timings["numpy_workers_warm"]["seconds"] > 0
            else float("inf")
        ),
        "chunk_stats": chunk_stats,
        "parity": {
            "distances_identical": distances_identical,
            "cells_identical": cells_identical,
        },
    }


def format_executor_report(report: Dict) -> str:
    """Human-readable summary of :func:`executor_benchmark` output."""
    w = report["workload"]
    lines = [
        f"executor: {w['pairs']} pairs of cdtw "
        f"(k={w['count']}, n={w['length']}, window={w['window']}, "
        f"workers={w['workers']}, cpus={report['cpu_count']})",
    ]
    for label, t in report["timings"].items():
        speedup = report["speedups_over_python_serial"].get(label)
        suffix = f"  x{speedup:.2f}" if speedup is not None else ""
        lines.append(
            f"  {label.ljust(20)} {t['seconds']:.4f}s"
            f"  ({t['per_pair_seconds'] * 1e3:.2f} ms/pair){suffix}"
        )
    lines.append(
        "  warm python vs serial: "
        f"x{report['warm_python_speedup_over_serial']:.2f}   "
        "warm numpy vs numpy serial: "
        f"x{report['warm_numpy_speedup_over_numpy_serial']:.2f}"
    )
    cs = report.get("chunk_stats")
    if cs:
        lines.append(
            f"  chunks: {cs['sched_chunks']} scheduled, "
            f"{cs['kernel_calls']} stacked kernel calls over "
            f"{cs['groups']} shape groups, "
            f"{cs['stacked_pairs']} pairs stacked "
            f"({cs['pad_rows']} pad rows, "
            f"{cs['pad_waste_fraction']:.1%} pad waste)"
        )
    parity = report["parity"]
    ok = parity["distances_identical"] and parity["cells_identical"]
    lines.append(
        "  parity: distances/cells "
        + ("bit-identical across all regimes" if ok else "MISMATCH")
    )
    return "\n".join(lines)


def format_report(report: Dict) -> str:
    """Human-readable summary of :func:`kernel_benchmark` output."""
    w = report["workload"]
    shape = f"k={w['count']}, n={w['length']}"
    if w.get("dims", 1) != 1:
        shape += f", d={w['dims']}"
    lines = [
        f"kernels: {w['pairs']} pairs of {w['measure']} "
        f"({shape}, window={w['window']})",
    ]
    for label, t in report["timings"].items():
        speedup = report["speedups_over_python_serial"].get(label)
        suffix = f"  x{speedup:.2f}" if speedup is not None else ""
        lines.append(
            f"  {label.ljust(14)} {t['seconds']:.4f}s"
            f"  ({t['per_pair_seconds'] * 1e3:.2f} ms/pair){suffix}"
        )
    sp = report["single_pair"]
    lines.append(
        f"  single pair: python {sp['python_seconds'] * 1e3:.2f} ms, "
        f"numpy {sp['numpy_seconds'] * 1e3:.2f} ms (x{sp['speedup']:.2f})"
    )
    parity = report["parity"]
    ok = parity["distances_identical"] and parity["cells_identical"]
    lines.append(
        "  parity: distances/cells "
        + ("bit-identical across backends" if ok else "MISMATCH")
    )
    return "\n".join(lines)
