"""Analytic cell-count cost models and the cDTW/FastDTW crossover.

Counting DP lattice cells gives a hardware- and language-independent
cost model:

* ``cDTW_w``      touches ``~ N * (2*ceil(w*max(N,M)) + 1)`` cells --
  reported *exactly*, via the same :class:`repro.core.window.Window`
  geometry the DP runs over (band corners clipped by the lattice edge
  are not counted);
* ``FastDTW_r``   touches ``~ N * (8r + 14)`` cells (Salvador & Chan's
  own accounting, including all recursion levels).

Setting the two equal predicts the window fraction below which exact
cDTW does strictly less work than approximate FastDTW:

    w* ~ (8r + 13) / (2N)

For the paper's Fig. 1 setting (N = 945, r = 10) this is ~4.9% -- i.e.
the archive-optimal ``w = 4`` does *less work than the crudest useful
FastDTW*, which is the paper's Case A argument in one line.  The
ablation benchmarks check the measured wall-clock crossovers track
this model.
"""

from __future__ import annotations

from typing import Optional


def cdtw_cell_model(n: int, window: float, m: Optional[int] = None) -> int:
    """Exact lattice cells for ``cDTW_w`` on lengths ``n`` (by ``m``).

    Routed through :func:`repro.core.cdtw.band_cells`, i.e. the same
    ``Window.from_fraction`` geometry the DP itself runs over -- the
    half-width is ``ceil(window * max(n, m))`` and band corners clipped
    by the lattice edge are not counted.  An earlier version of this
    model computed ``ceil(window * n)`` locally, which silently
    under-sized the band (and hence the predicted work) whenever
    ``m > n``; keeping one source of truth makes that drift impossible.

    ``m`` defaults to ``n`` (the equal-length setting of the paper's
    figures).
    """
    if n < 1 or (m is not None and m < 1):
        raise ValueError("lengths must be positive")
    if not 0.0 <= window <= 1.0:
        raise ValueError("window must be a fraction in [0, 1]")
    from ..core.cdtw import band_cells

    return band_cells(n, n if m is None else m, window=window)


def fastdtw_cell_model(n: int, radius: int) -> int:
    """Salvador & Chan's model of FastDTW's total cell evaluations."""
    if n < 1 or radius < 0:
        raise ValueError("need n >= 1 and radius >= 0")
    return n * (8 * radius + 14)


def crossover_band(n: int, radius: int) -> float:
    """The window fraction where the two models do equal work.

    Below this ``w``, exact cDTW evaluates fewer cells than
    ``FastDTW_radius``; above it, more.  Clipped to 1.0.

    >>> round(crossover_band(945, 10), 3)
    0.049
    """
    if n < 1 or radius < 0:
        raise ValueError("need n >= 1 and radius >= 0")
    return min(1.0, (8 * radius + 13) / (2 * n))


def crossover_length(window: float, radius: int) -> float:
    """The series length above which ``FastDTW_radius`` touches fewer
    cells than ``cDTW_window`` (the Fig. 6 crossover, model form).

    For ``window = 1`` (Full DTW) and ``radius = 40`` the cell model
    predicts N ~ 167.  Measured wall-clock crossovers land ~2x higher
    (our Fig. 6 run: N ~ 300; the paper: N = 400) because FastDTW pays
    recursion and window-construction overhead *per level* on top of
    its cell count -- which is precisely the paper's point.

    >>> 150 < crossover_length(1.0, 40) < 200
    True
    """
    if not 0.0 < window <= 1.0:
        raise ValueError("window must be in (0, 1]")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return (8 * radius + 13) / (2 * window)
