"""Analytic cell-count cost models and the cDTW/FastDTW crossover.

Counting DP lattice cells gives a hardware- and language-independent
cost model:

* ``cDTW_w``      touches ``~ N * (2*ceil(wN) + 1)`` cells;
* ``FastDTW_r``   touches ``~ N * (8r + 14)`` cells (Salvador & Chan's
  own accounting, including all recursion levels).

Setting the two equal predicts the window fraction below which exact
cDTW does strictly less work than approximate FastDTW:

    w* ~ (8r + 13) / (2N)

For the paper's Fig. 1 setting (N = 945, r = 10) this is ~4.9% -- i.e.
the archive-optimal ``w = 4`` does *less work than the crudest useful
FastDTW*, which is the paper's Case A argument in one line.  The
ablation benchmarks check the measured wall-clock crossovers track
this model.
"""

from __future__ import annotations

import math


def cdtw_cell_model(n: int, window: float) -> int:
    """Model of lattice cells for ``cDTW_w`` on equal lengths ``n``.

    Clipped at the full lattice ``n * n`` (the ``w = 100%`` case).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 <= window <= 1.0:
        raise ValueError("window must be a fraction in [0, 1]")
    band = math.ceil(window * n)
    return min(n * (2 * band + 1), n * n)


def fastdtw_cell_model(n: int, radius: int) -> int:
    """Salvador & Chan's model of FastDTW's total cell evaluations."""
    if n < 1 or radius < 0:
        raise ValueError("need n >= 1 and radius >= 0")
    return n * (8 * radius + 14)


def crossover_band(n: int, radius: int) -> float:
    """The window fraction where the two models do equal work.

    Below this ``w``, exact cDTW evaluates fewer cells than
    ``FastDTW_radius``; above it, more.  Clipped to 1.0.

    >>> round(crossover_band(945, 10), 3)
    0.049
    """
    if n < 1 or radius < 0:
        raise ValueError("need n >= 1 and radius >= 0")
    return min(1.0, (8 * radius + 13) / (2 * n))


def crossover_length(window: float, radius: int) -> float:
    """The series length above which ``FastDTW_radius`` touches fewer
    cells than ``cDTW_window`` (the Fig. 6 crossover, model form).

    For ``window = 1`` (Full DTW) and ``radius = 40`` the cell model
    predicts N ~ 167.  Measured wall-clock crossovers land ~2x higher
    (our Fig. 6 run: N ~ 300; the paper: N = 400) because FastDTW pays
    recursion and window-construction overhead *per level* on top of
    its cell count -- which is precisely the paper's point.

    >>> 150 < crossover_length(1.0, 40) < 200
    True
    """
    if not 0.0 < window <= 1.0:
        raise ValueError("window must be in (0, 1]")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return (8 * radius + 13) / (2 * window)
