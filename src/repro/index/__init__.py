"""Ahead-of-time dataset indexing for repeated exact-cDTW search.

See :mod:`repro.index.dataset_index` for the design.  Public surface:

* :func:`build_index` / :func:`build_stream_index` -- precompute
  per-series artifacts (prepared series, Keogh envelopes, endpoint
  features, moments) for a collection or a stream's sliding windows;
* :func:`save_index` / :func:`load_index` -- the versioned,
  fingerprint-verified on-disk format;
* :class:`DatasetIndex.searcher` -- the query driver consumers use
  through the ``index=`` argument of ``nearest_neighbor``,
  ``subsequence_search``, the classifiers, ``find_discord`` and
  ``find_motif``;
* :func:`index_benchmark` -- the pruning-power report behind
  ``BENCH_index.json``.

The paper harness (:mod:`repro.timing`, :mod:`repro.experiments`) is
deliberately index-free -- the source-scan tests enforce it -- so the
reproduced numbers keep measuring the per-query machinery the paper
describes.
"""

from .bench import format_index_report, index_benchmark
from .dataset_index import (
    DatasetIndex,
    IndexMismatchError,
    build_index,
    build_stream_index,
)
from .search import IndexScan, IndexSearcher
from .storage import FORMAT, load_index, save_index

__all__ = [
    "FORMAT",
    "DatasetIndex",
    "IndexMismatchError",
    "IndexScan",
    "IndexSearcher",
    "build_index",
    "build_stream_index",
    "format_index_report",
    "index_benchmark",
    "load_index",
    "save_index",
]
