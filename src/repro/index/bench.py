"""Pruning-power benchmark: what does the index actually buy?

The interesting metric is not wall-clock (toy datasets fit in cache)
but **work avoided**: how many candidates per query still reach the
expensive DP stage (``dtw_calls`` = completed + abandoned DPs) and how
many DP lattice cells get evaluated, with and without the index, and
with LB_Keogh alone versus the LB_Improved stage on top.  The workload
is the synthetic archive's leave-one-out 1-NN -- every series queries
its own dataset -- i.e. exactly the repeated-use setting the paper's
Section 3.4 argues for.

Three variants, all returning bit-identical neighbours (recorded under
``"agree"``):

* ``unindexed_keogh`` -- today's index-free cascade scan in dataset
  order (Kim, Keogh, reversed Keogh, abandoning DP);
* ``indexed_keogh``   -- the index fast path (precomputed envelopes,
  best-first ordering) with LB_Improved off;
* ``indexed_improved`` -- the same plus the LB_Improved stage.

``python -m repro index bench`` writes the report to
``BENCH_index.json``; the schema smoke test pins its shape and asserts
``indexed_improved`` makes strictly fewer DTW calls per query than
``indexed_keogh``.
"""

from __future__ import annotations

import time
from math import ceil, inf
from typing import List, Optional

from ..datasets.synthetic_archive import synthetic_archive
from ..lowerbounds.cascade import CascadeStats, LowerBoundCascade
from ..runtime import Runtime
from .dataset_index import build_index

__all__ = ["format_index_report", "index_benchmark"]

SCHEMA = "repro.index.bench/v1"


def _merge(total: CascadeStats, stats: CascadeStats) -> None:
    total.candidates += stats.candidates
    total.pruned_kim += stats.pruned_kim
    total.pruned_keogh += stats.pruned_keogh
    total.pruned_improved += stats.pruned_improved
    total.pruned_keogh_reversed += stats.pruned_keogh_reversed
    total.abandoned_dtw += stats.abandoned_dtw
    total.full_dtw += stats.full_dtw
    total.cells += stats.cells
    total.reused_exact += stats.reused_exact


def _variant_report(
    label: str, queries: int, total: CascadeStats, seconds: float
) -> dict:
    dtw_calls = total.full_dtw + total.abandoned_dtw
    return {
        "variant": label,
        "queries": queries,
        "candidates": total.candidates,
        "dtw_calls": dtw_calls,
        "dtw_calls_per_query": dtw_calls / queries,
        "full_dtw": total.full_dtw,
        "abandoned_dtw": total.abandoned_dtw,
        "cells": total.cells,
        "cells_per_query": total.cells / queries,
        "pruned_kim": total.pruned_kim,
        "pruned_keogh": total.pruned_keogh,
        "pruned_improved": total.pruned_improved,
        "pruned_keogh_reversed": total.pruned_keogh_reversed,
        "prune_rate": total.prune_rate(),
        "seconds": seconds,
    }


def index_benchmark(
    n_datasets: int = 3,
    length_range=(40, 72),
    classes: int = 3,
    per_class: int = 5,
    window: float = 0.1,
    seed: int = 0,
    runtime: Optional[Runtime] = None,
) -> dict:
    """Run the three variants over the synthetic archive (module notes).

    Returns a JSON-ready report.  ``window`` is the band as a fraction
    of the series length (``ceil``, the package convention).
    """
    rt = Runtime.resolve(runtime).serial()
    entries = synthetic_archive(
        n_datasets=n_datasets, length_range=length_range,
        classes=classes, per_class=per_class, seed=seed,
    )

    totals = {
        "unindexed_keogh": CascadeStats(),
        "indexed_keogh": CascadeStats(),
        "indexed_improved": CascadeStats(),
    }
    seconds = dict.fromkeys(totals, 0.0)
    winners = {label: [] for label in totals}
    queries = 0

    for entry in entries:
        series = [list(s) for s in entry.dataset.series]
        band = ceil(window * len(series[0]))
        queries += len(series)

        t0 = time.perf_counter()
        for i, q in enumerate(series):
            cascade = LowerBoundCascade(q, band, runtime=rt)
            best, best_idx = inf, -1
            for j, cand in enumerate(series):
                if j == i:
                    continue
                d = cascade.distance(cand, best_so_far=best)
                if d < best:
                    best, best_idx = d, j
            winners["unindexed_keogh"].append((entry.name, i, best_idx, best))
            _merge(totals["unindexed_keogh"], cascade.stats)
        seconds["unindexed_keogh"] += time.perf_counter() - t0

        t0 = time.perf_counter()
        idx = build_index(series, band, runtime=rt)
        build_seconds = time.perf_counter() - t0

        for label, use_improved in (
            ("indexed_keogh", False), ("indexed_improved", True),
        ):
            searcher = idx.searcher(runtime=rt, use_improved=use_improved)
            t0 = time.perf_counter()
            for i, q in enumerate(series):
                hit = searcher.nearest(q, exclude=i, query_index=i)
                winners[label].append(
                    (entry.name, i, hit.index, hit.distance)
                )
                _merge(totals[label], hit.stats)
            seconds[label] += time.perf_counter() - t0
        seconds["indexed_keogh"] += build_seconds  # charge the build once

    reference = winners["unindexed_keogh"]
    agree = all(winners[label] == reference for label in winners)

    variants = {
        label: _variant_report(label, queries, total, seconds[label])
        for label, total in totals.items()
    }
    improved = variants["indexed_improved"]
    keogh = variants["indexed_keogh"]
    return {
        "benchmark": SCHEMA,
        "note": (
            "pruning power of the ahead-of-time index on the synthetic "
            "archive's leave-one-out 1-NN; dtw_calls counts candidates "
            "that reached the DP stage (completed + abandoned).  The "
            "paper harness (timing/, experiments/) never uses the "
            "index; this report quantifies the repeated-use headroom."
        ),
        "workload": {
            "kind": "synthetic_archive_loocv_nn",
            "n_datasets": n_datasets,
            "length_range": list(length_range),
            "classes": classes,
            "per_class": per_class,
            "window": window,
            "seed": seed,
            "queries": queries,
            "backend": rt.backend_name,
        },
        "variants": variants,
        "agree": agree,
        "improved_fewer_dtw_calls": (
            improved["dtw_calls"] < keogh["dtw_calls"]
        ),
    }


def format_index_report(report: dict) -> List[str]:
    """Human-readable lines for the CLI."""
    lines = [
        f"index pruning-power benchmark ({report['benchmark']})",
        f"  workload: {report['workload']['queries']} LOOCV queries over "
        f"{report['workload']['n_datasets']} datasets "
        f"(window={report['workload']['window']}, "
        f"backend={report['workload']['backend']})",
    ]
    for label, v in report["variants"].items():
        lines.append(
            f"  {label:18s} dtw_calls/query={v['dtw_calls_per_query']:.2f} "
            f"cells/query={v['cells_per_query']:.0f} "
            f"prune_rate={v['prune_rate']:.3f}"
        )
    lines.append(
        "  neighbours identical across variants: "
        f"{report['agree']}"
    )
    lines.append(
        "  LB_Improved reduces DTW calls vs LB_Keogh alone: "
        f"{report['improved_fewer_dtw_calls']}"
    )
    return lines
