"""Ahead-of-time artifacts for repeated cDTW search.

The paper's repeated-use argument (Section 3.4) is an amortisation
argument: banding, lower bounds and early abandoning pay off because
their per-dataset setup is done *once* and reused across thousands of
queries.  Yet the query paths in this package recompute that setup --
z-normalised windows, Keogh envelopes, endpoint features -- on every
call.  :class:`DatasetIndex` moves the setup ahead of time:

* :func:`build_index` snapshots a series *collection* (1-NN search,
  k-NN classification, LOOCV);
* :func:`build_stream_index` snapshots the sliding windows of a long
  *stream* (subsequence search, discords, motifs);

both precompute, per series, the band-``r`` Keogh envelope (through
the same ``envelope_chunk`` kernels the live path uses -- envelope
values are pure selections, so they are bit-identical on every
backend), the LB_Kim endpoint features, and the normalisation moments
(mean, std) of the raw values.  The index is keyed by the shared-memory
layer's blake2b content fingerprint of the **source bytes**: a loaded
index can prove, via :meth:`DatasetIndex.verify_collection` /
:meth:`DatasetIndex.verify_stream`, that it was built from exactly the
data a caller is about to search.  Persistence lives in
:mod:`repro.index.storage`; the query driver in
:mod:`repro.index.search`.

Consumers (``nearest_neighbor``, ``subsequence_search``, ``knn``,
``find_discord``, ``find_motif``) accept the index as an opaque
``index=`` argument and only ever call its methods -- the source-scan
test suite forbids them from naming this module's constructors, so the
index internals stay private to ``repro.index``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Optional, Sequence, Tuple

from ..batch.shm import dataset_dims, pack_dataset
from ..core.validate import validate_series
from ..lowerbounds.envelope import Envelope
from ..preprocess.normalize import znorm, znorm_nd
from ..preprocess.sliding import sliding_windows
from ..runtime import Runtime

__all__ = [
    "DatasetIndex",
    "IndexMismatchError",
    "build_index",
    "build_stream_index",
]

KINDS = ("collection", "windows")


class IndexMismatchError(ValueError):
    """A :class:`DatasetIndex` does not match what a caller expects.

    Raised when an index's fingerprint disagrees with the bytes it is
    asked to serve, or when its build parameters (kind, band, window,
    step, normalisation) differ from a query's.  Subclasses
    ``ValueError`` so pre-index error handling keeps working.
    """


@dataclass(frozen=True)
class DatasetIndex:
    """Precomputed per-series search artifacts (see the module notes).

    Attributes
    ----------
    kind:
        ``"collection"`` (a set of whole series) or ``"windows"``
        (the sliding windows of one stream).
    band:
        Sakoe-Chiba half-width the envelopes were built with; queries
        must use the same band.
    normalize:
        Whether the stored series are z-normalised views of the
        source.  Collection indexes default to ``False`` (1-NN search
        compares raw series); window indexes to ``True`` (subsequence
        search z-normalises every window).
    step, window:
        Window stride and length (``windows`` kind; a collection
        records ``step=1`` and ``window = len(series[0])``).
    starts:
        Stream offset of every stored window (empty for collections).
    source_fingerprint:
        blake2b content fingerprint (:func:`repro.batch.shm.
        pack_dataset`) of the **source** -- the raw series collection,
        or the one-series stream -- proving which bytes the index
        describes.
    series:
        The prepared (possibly z-normalised) series the search runs
        over, bit-identical to what the index-free path would build.
    upper, lower:
        Per-series band-``band`` Keogh envelopes of ``series``.
    kim:
        Per-series ``(first, last)`` endpoint features (the LB_Kim
        inputs).
    moments:
        Per-series, per-channel ``(mean, std)`` of the *raw* values,
        using the same formulas as
        :func:`repro.preprocess.normalize.znorm` (``std`` is stored
        as 0.0 for constant series, which znorm maps to all-zeros).
    dims:
        Sample dimensionality.  ``1`` is the univariate case (rows
        are plain series).  For multivariate collections every row --
        series, envelopes, kim features, moments -- is stored *flat*,
        sample-major: row ``i`` of ``series`` holds
        ``length * dims`` floats laid out
        ``(v[0][0], ..., v[0][dims-1], v[1][0], ...)``, ``kim`` holds
        the first and last sample (``2 * dims`` floats), ``moments``
        one ``(mean, std)`` pair per channel.
    """

    kind: str
    band: int
    normalize: bool
    step: int
    window: int
    starts: Tuple[int, ...]
    source_fingerprint: str
    series: Tuple[Tuple[float, ...], ...]
    upper: Tuple[Tuple[float, ...], ...]
    lower: Tuple[Tuple[float, ...], ...]
    kim: Tuple[Tuple[float, ...], ...]
    moments: Tuple[Tuple[float, ...], ...]
    dims: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown index kind {self.kind!r}")
        if self.band < 0:
            raise ValueError("band must be non-negative")
        if self.dims < 1:
            raise ValueError("dims must be at least 1")
        if not self.series:
            raise ValueError("index holds no series")
        flat = len(self.series[0])
        if self.window * self.dims != flat:
            # the header's window field is what require(window=...)
            # checks a query's length against, so it must agree with
            # the stored series -- otherwise a query of the "right"
            # window length would reuse envelopes of a different
            # length (silently wrong bounds)
            raise ValueError(
                f"stored series hold {flat} values but the header "
                f"claims window={self.window} x dims={self.dims}"
            )
        for block_name in ("series", "upper", "lower"):
            block = getattr(self, block_name)
            if len(block) != len(self.series) or any(
                len(row) != flat for row in block
            ):
                raise ValueError(f"ragged index block {block_name!r}")
        if len(self.kim) != len(self.series) or any(
            len(row) != 2 * self.dims for row in self.kim
        ):
            raise ValueError("kim features do not cover every series")
        if len(self.moments) != len(self.series) or any(
            len(row) != 2 * self.dims for row in self.moments
        ):
            raise ValueError("moments do not cover every series")
        if self.kind == "windows":
            if len(self.starts) != len(self.series):
                raise ValueError("starts do not cover every window")
            if any(
                b - a != self.step
                for a, b in zip(self.starts, self.starts[1:])
            ):
                raise ValueError(
                    "window starts must advance by exactly step"
                )
        elif self.starts:
            raise ValueError("collection indexes carry no starts")

    def __len__(self) -> int:
        return len(self.series)

    @property
    def length(self) -> int:
        """Length (sample count) of every stored series."""
        return len(self.series[0]) // self.dims

    def _vectors(self, row: Sequence[float]) -> Tuple[Tuple[float, ...], ...]:
        """Regroup one flat sample-major row into ``dims``-tuples."""
        d = self.dims
        return tuple(
            tuple(row[i:i + d]) for i in range(0, len(row), d)
        )

    def candidate_series(self):
        """The stored series in the shape search consumers feed to the
        cascade: flat rows when univariate, ``(length, dims)`` nested
        rows when multivariate."""
        if self.dims == 1:
            return self.series
        return tuple(self._vectors(row) for row in self.series)

    def envelope(self, index: int):
        """The stored Keogh envelope of one series: an
        :class:`~repro.lowerbounds.envelope.Envelope` when univariate,
        the per-channel tuple of them (``envelopes_nd`` form) when
        multivariate."""
        if self.dims == 1:
            return Envelope(
                self.band, list(self.upper[index]), list(self.lower[index])
            )
        up, lo = self.upper[index], self.lower[index]
        return tuple(
            Envelope(self.band, list(up[k::self.dims]), list(lo[k::self.dims]))
            for k in range(self.dims)
        )

    def candidate_envelopes(self):
        """All envelopes in the form the cascade batch driver consumes:
        ``(upper, lower)`` stacks when univariate, one per-channel
        :class:`Envelope` tuple per candidate when multivariate."""
        if self.dims == 1:
            return self.upper, self.lower
        return tuple(self.envelope(i) for i in range(len(self)))

    # ------------------------------------------------------------------
    # verification: an index must *prove* it matches the caller's data
    # ------------------------------------------------------------------

    def require(self, **expected) -> "DatasetIndex":
        """Check build parameters against a query's, chainable.

        ``index.require(kind="windows", band=5, window=32)`` raises
        :class:`IndexMismatchError` naming the first differing field.
        Recognised keys: ``kind``, ``band``, ``normalize``, ``step``,
        ``window``, ``length``, ``count``, ``dims``.
        """
        actual = {
            "kind": self.kind,
            "band": self.band,
            "normalize": self.normalize,
            "step": self.step,
            "window": self.window,
            "length": self.length,
            "count": len(self),
            "dims": self.dims,
        }
        for key, want in expected.items():
            if key not in actual:
                raise TypeError(f"unknown index requirement {key!r}")
            if want is not None and actual[key] != want:
                raise IndexMismatchError(
                    f"index {key} is {actual[key]!r} but the query "
                    f"needs {want!r}; rebuild the index with matching "
                    f"parameters"
                )
        return self

    def verify_collection(
        self, series: Sequence[Sequence[float]]
    ) -> "DatasetIndex":
        """Prove this index was built from exactly ``series``.

        Recomputes the blake2b content fingerprint of the candidate
        collection and compares it to the recorded source
        fingerprint; raises :class:`IndexMismatchError` on any
        difference (one mutated sample is enough to change the hash).
        """
        self.require(kind="collection")
        _, _, fingerprint = pack_dataset(series)
        if fingerprint != self.source_fingerprint:
            raise IndexMismatchError(
                "index fingerprint mismatch: this index was built from "
                f"source {self.source_fingerprint} but the candidates "
                f"hash to {fingerprint}; it does not describe these "
                "series"
            )
        return self

    def verify_stream(self, stream: Sequence[float]) -> "DatasetIndex":
        """Prove this index was built from exactly ``stream``."""
        self.require(kind="windows")
        _, _, fingerprint = pack_dataset([stream])
        if fingerprint != self.source_fingerprint:
            raise IndexMismatchError(
                "index fingerprint mismatch: this index was built from "
                f"source {self.source_fingerprint} but the stream "
                f"hashes to {fingerprint}; it does not describe this "
                "stream"
            )
        return self

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------

    def searcher(
        self,
        runtime: Optional[Runtime] = None,
        use_improved: bool = True,
        best_first: bool = True,
        share_exact: bool = False,
    ):
        """An :class:`~repro.index.search.IndexSearcher` over this
        index (the object consumers drive; see its docs)."""
        from .search import IndexSearcher

        return IndexSearcher(
            self, runtime=runtime, use_improved=use_improved,
            best_first=best_first, share_exact=share_exact,
        )

    def describe(self) -> dict:
        """JSON-friendly summary (the ``index stat`` CLI output)."""
        return {
            "kind": self.kind,
            "band": self.band,
            "normalize": self.normalize,
            "step": self.step,
            "window": self.window,
            "count": len(self),
            "length": self.length,
            "dims": self.dims,
            "source_fingerprint": self.source_fingerprint,
            "artifacts": ["series", "upper", "lower", "kim", "moments"],
        }


def _moments(raw: Sequence[float], epsilon: float = 1e-12) -> Tuple[float, float]:
    """(mean, std) with :func:`znorm`'s formulas; 0.0 std when constant."""
    n = len(raw)
    mean = sum(raw) / n
    var = sum((v - mean) ** 2 for v in raw) / n
    std = sqrt(var)
    return (mean, 0.0 if std < epsilon else std)


def _moments_nd(raw: Sequence[Sequence[float]]) -> Tuple[float, ...]:
    """Per-channel (mean, std) pairs of one nd series, channel-major
    (matching :func:`znorm_nd`'s per-axis statistics)."""
    dims = len(raw[0])
    out = []
    for k in range(dims):
        out.extend(_moments([float(v[k]) for v in raw]))
    return tuple(out)


def _flat(row) -> Tuple[float, ...]:
    """One ``(n, dims)`` row flattened sample-major."""
    return tuple(float(c) for v in row for c in v)


def _assemble(
    kind: str,
    band: int,
    normalize: bool,
    step: int,
    window: int,
    starts: Sequence[int],
    source_fingerprint: str,
    prepared: Sequence[Sequence[float]],
    raw: Sequence[Sequence[float]],
    runtime: Optional[Runtime],
    dims: int = 1,
) -> DatasetIndex:
    rt = Runtime.resolve(runtime).serial()
    if dims == 1:
        upper, lower = rt.kernels().envelope_chunk(prepared, band)
        return DatasetIndex(
            kind=kind,
            band=band,
            normalize=normalize,
            step=step,
            window=window,
            starts=tuple(int(s) for s in starts),
            source_fingerprint=source_fingerprint,
            series=tuple(tuple(float(v) for v in s) for s in prepared),
            upper=tuple(tuple(float(v) for v in row) for row in upper),
            lower=tuple(tuple(float(v) for v in row) for row in lower),
            kim=tuple((float(s[0]), float(s[-1])) for s in prepared),
            moments=tuple(_moments(s) for s in raw),
        )
    # multivariate: per-channel envelopes come back sample-major
    # (chunk, n, dims) from envelope_nd_chunk, exactly the layout the
    # flat rows persist
    upper, lower = rt.kernels().envelope_nd_chunk(prepared, band)
    return DatasetIndex(
        kind=kind,
        band=band,
        normalize=normalize,
        step=step,
        window=window,
        starts=tuple(int(s) for s in starts),
        source_fingerprint=source_fingerprint,
        series=tuple(_flat(s) for s in prepared),
        upper=tuple(_flat(row) for row in upper),
        lower=tuple(_flat(row) for row in lower),
        kim=tuple(
            tuple(float(c) for c in s[0]) + tuple(float(c) for c in s[-1])
            for s in prepared
        ),
        moments=tuple(_moments_nd(s) for s in raw),
        dims=dims,
    )


def build_index(
    series: Sequence[Sequence[float]],
    band: int,
    normalize: bool = False,
    runtime: Optional[Runtime] = None,
) -> DatasetIndex:
    """Index a collection of equal-length series for repeated 1-NN.

    ``normalize`` defaults to ``False`` because the 1-NN consumers
    (:func:`repro.search.nearest_neighbor`, the classifiers) compare
    candidates exactly as given; an index built with ``True`` stores
    the z-normalised views instead and only suits callers that search
    normalised space explicitly.

    The envelopes come from the runtime's ``envelope_chunk`` kernel;
    their values are pure sliding-extreme selections, hence
    bit-identical across backends, so the *same index file* serves
    every backend.

    Multivariate ``(length, dims)`` collections index transparently:
    per-channel envelopes and moments are stored (``znorm_nd`` when
    normalising), and the resulting index serves the multivariate
    cascade (``cdtw_d`` / ``cdtw_i`` search).
    """
    if band < 0:
        raise ValueError("band must be non-negative")
    if not series:
        raise ValueError("cannot index an empty collection")
    lengths = {len(s) for s in series}
    if len(lengths) != 1:
        raise ValueError(
            f"collection index requires equal-length series, got "
            f"lengths {sorted(lengths)}"
        )
    n = lengths.pop()
    if n == 0:
        raise ValueError("cannot index empty series")
    for i, s in enumerate(series):
        validate_series(s, f"series[{i}]")
    dims = dataset_dims(series)
    _, _, fingerprint = pack_dataset(series)
    if dims is None:
        raw = [list(s) for s in series]
        prepared = [znorm(s) if normalize else list(s) for s in raw]
    else:
        raw = [
            [tuple(float(c) for c in v) for v in s] for s in series
        ]
        prepared = [
            znorm_nd(s) if normalize else list(s) for s in raw
        ]
    return _assemble(
        kind="collection", band=band, normalize=normalize, step=1,
        window=n, starts=(), source_fingerprint=fingerprint,
        prepared=prepared, raw=raw, runtime=runtime,
        dims=1 if dims is None else dims,
    )


def build_stream_index(
    stream: Sequence[float],
    window: int,
    band: int,
    step: int = 1,
    normalize: bool = True,
    runtime: Optional[Runtime] = None,
) -> DatasetIndex:
    """Index the sliding windows of a stream for repeated search.

    Stores exactly the windows the index-free subsequence / discord /
    motif scans would materialise -- same offsets
    (:func:`repro.preprocess.sliding.sliding_windows` with this
    ``step``), same per-window :func:`znorm` when ``normalize`` --
    plus each window's envelope, endpoint features and raw moments.
    """
    if band < 0:
        raise ValueError("band must be non-negative")
    if window < 1 or step < 1:
        raise ValueError("window and step must be positive")
    validate_series(stream, "stream")
    if len(stream) < window:
        raise ValueError("stream shorter than window")
    dims = dataset_dims([stream])
    _, _, fingerprint = pack_dataset([stream])
    starts = []
    raw = []
    prepared = []
    for start, w in sliding_windows(stream, window, step):
        starts.append(start)
        if dims is None:
            raw.append(w)
            prepared.append(znorm(w) if normalize else list(w))
        else:
            vw = [tuple(float(c) for c in v) for v in w]
            raw.append(vw)
            prepared.append(znorm_nd(vw) if normalize else list(vw))
    return _assemble(
        kind="windows", band=band, normalize=normalize, step=step,
        window=window, starts=starts, source_fingerprint=fingerprint,
        prepared=prepared, raw=raw, runtime=runtime,
        dims=1 if dims is None else dims,
    )
