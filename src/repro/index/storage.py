"""Versioned on-disk format for :class:`~repro.index.DatasetIndex`.

Layout (``repro.index/v1``)::

    <one JSON header line, UTF-8, "\\n"-terminated>
    <payload: the float64 blocks, concatenated row-major>

The header records the build parameters, the block table, the machine
byte order, the **source fingerprint** (blake2b of the bytes the index
was built from, via :func:`repro.batch.shm.pack_dataset`) and a
**payload fingerprint** -- blake2b over the *canonical header itself*
(minus the fingerprint field, JSON with sorted keys) followed by the
float block bytes as written, so the semantic fields (``band``,
``normalize``, ``kind``, ``step``, ``window``, ``starts``, ...) are
tamper-evident, not just the numbers.  :func:`load_index` recomputes
the hash and refuses a file whose bytes do not match -- a flipped
payload bit, truncation, an edited header over an intact payload, or
a header transplanted onto foreign data all fail loudly with
:class:`~repro.index.IndexMismatchError` rather than silently serving
wrong envelopes or offsets.  The source fingerprint travels with the index so a
loaded copy can still prove, against live data, which bytes it claims
to describe (:meth:`DatasetIndex.verify_collection` /
:meth:`~repro.index.DatasetIndex.verify_stream`).

Everything is stdlib: :mod:`json` for the header, :class:`array.array`
for the payload.  ``array("d")`` writes native-endian IEEE doubles, so
the header pins ``sys.byteorder`` and loading on a machine of the
other endianness is rejected (correct, if unexciting: the format is a
cache, and rebuilding is cheap).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from array import array
from typing import Optional, Tuple, Union

from .dataset_index import DatasetIndex, IndexMismatchError

__all__ = ["FORMAT", "FORMAT_ND", "load_index", "save_index"]

FORMAT = "repro.index/v1"

#: Multivariate extension: identical layout, but every row is
#: ``dims`` times wider (flat sample-major; ``kim``/``moments`` hold
#: ``2 * dims`` values) and the header carries a ``dims`` field.  A
#: distinct format string keeps the contract honest in *both*
#: directions: dims-1 indexes still write plain ``repro.index/v1``
#: byte-for-byte, and readers that predate multivariate support
#: refuse an nd file loudly ("unsupported index format") instead of
#: mis-slicing its payload into scalar envelopes.
FORMAT_ND = "repro.index/v1+nd"

#: (name, columns) of every payload block, in on-disk order.  Each
#: block has one row per indexed series.
_BLOCKS = (
    ("series", None),  # None = the index's series length
    ("upper", None),
    ("lower", None),
    ("kim", 2),
    ("moments", 2),
)


def _fingerprint(header: dict, payload: bytes) -> str:
    """Hash of the canonical header (minus the fingerprint field
    itself) and the payload bytes, in that order.

    Covering the header makes every semantic field tamper-evident:
    an edited ``band``/``normalize``/``starts`` over an intact payload
    changes the hash just as surely as a flipped payload byte.
    """
    canonical = {
        key: value
        for key, value in header.items()
        if key != "payload_fingerprint"
    }
    digest = hashlib.blake2b(digest_size=16)
    digest.update(json.dumps(canonical, sort_keys=True).encode("utf-8"))
    digest.update(b"\n")
    digest.update(payload)
    return digest.hexdigest()


def _pack_block(rows, columns: int) -> bytes:
    buf = array("d")
    for row in rows:
        if len(row) != columns:
            raise ValueError("ragged block row")  # pragma: no cover
        buf.extend(float(v) for v in row)
    return buf.tobytes()


def save_index(index: DatasetIndex, path: Union[str, os.PathLike]) -> dict:
    """Write ``index`` to ``path`` in the ``repro.index/v1`` format.

    Returns the header dict that was written (handy for logging and
    the CLI).  The write is atomic-ish: a temporary sibling file is
    written in full and then replaced over ``path``.
    """
    n = index.length
    payload_parts = []
    for name, columns in _BLOCKS:
        payload_parts.append(
            _pack_block(getattr(index, name), (columns or n) * index.dims)
        )
    payload = b"".join(payload_parts)
    header = {
        "format": FORMAT if index.dims == 1 else FORMAT_ND,
        "kind": index.kind,
        "band": index.band,
        "normalize": index.normalize,
        "step": index.step,
        "window": index.window,
        "starts": list(index.starts),
        "count": len(index),
        "length": n,
        "byteorder": sys.byteorder,
        "blocks": [name for name, _ in _BLOCKS],
        "source_fingerprint": index.source_fingerprint,
    }
    if index.dims != 1:
        # dims-1 headers stay byte-identical to pre-multivariate
        # builds (no new key), so existing v1 files round-trip
        header["dims"] = index.dims
    header["payload_fingerprint"] = _fingerprint(header, payload)
    blob = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload
    tmp = os.fspath(path) + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, os.fspath(path))
    return header


def _read_header(blob: bytes, path: str) -> Tuple[dict, bytes]:
    newline = blob.find(b"\n")
    if newline < 0:
        raise IndexMismatchError(
            f"{path}: not a repro.index file (no header line)"
        )
    try:
        header = json.loads(blob[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IndexMismatchError(
            f"{path}: not a repro.index file (unreadable header: {exc})"
        ) from None
    if not isinstance(header, dict) or header.get("format") not in (
        FORMAT, FORMAT_ND,
    ):
        raise IndexMismatchError(
            f"{path}: unsupported index format "
            f"{header.get('format') if isinstance(header, dict) else header!r}"
            f" (this build reads {FORMAT} and {FORMAT_ND})"
        )
    return header, blob[newline + 1:]


def load_index(
    path: Union[str, os.PathLike],
    expected_fingerprint: Optional[str] = None,
) -> DatasetIndex:
    """Load and *verify* an index written by :func:`save_index`.

    The payload hash is always rechecked; ``expected_fingerprint``
    additionally pins the **source** fingerprint (pass the value from
    :func:`repro.batch.shm.pack_dataset` over the live data, or a
    recorded one).  Either mismatch raises
    :class:`~repro.index.IndexMismatchError` with the two hashes, so a
    stale or foreign index can never be consulted silently.
    """
    path_str = os.fspath(path)
    with open(path_str, "rb") as fh:
        blob = fh.read()
    header, payload = _read_header(blob, path_str)

    if header.get("byteorder") != sys.byteorder:
        raise IndexMismatchError(
            f"{path_str}: index written on a {header.get('byteorder')}"
            f"-endian machine cannot be read on a {sys.byteorder}"
            f"-endian one; rebuild it here"
        )
    recorded = header.get("payload_fingerprint")
    actual = _fingerprint(header, payload)
    if actual != recorded:
        raise IndexMismatchError(
            f"{path_str}: index payload fingerprint mismatch "
            f"(header says {recorded}, header+payload hash to "
            f"{actual}); the file is corrupted or was tampered with "
            f"-- rebuild the index"
        )
    if (
        expected_fingerprint is not None
        and header.get("source_fingerprint") != expected_fingerprint
    ):
        raise IndexMismatchError(
            f"{path_str}: index describes source "
            f"{header.get('source_fingerprint')} but the caller "
            f"expects {expected_fingerprint}; it was built from "
            f"different data"
        )

    count = int(header["count"])
    n = int(header["length"])
    dims = int(header.get("dims", 1))
    if header.get("format") == FORMAT and "dims" in header:
        raise IndexMismatchError(
            f"{path_str}: a {FORMAT} header must not carry a dims "
            f"field (multivariate indexes declare {FORMAT_ND})"
        )
    if header.get("format") == FORMAT_ND and dims < 2:
        raise IndexMismatchError(
            f"{path_str}: {FORMAT_ND} header declares dims={dims}; "
            f"univariate indexes use {FORMAT}"
        )
    doubles = array("d")
    doubles.frombytes(payload)
    expected_len = sum(
        count * (columns or n) * dims for _, columns in _BLOCKS
    )
    if len(doubles) != expected_len:
        raise IndexMismatchError(
            f"{path_str}: payload holds {len(doubles)} doubles, "
            f"expected {expected_len}"
        )

    blocks = {}
    offset = 0
    for name, columns in _BLOCKS:
        width = (columns or n) * dims
        rows = []
        for _ in range(count):
            rows.append(tuple(doubles[offset:offset + width]))
            offset += width
        blocks[name] = tuple(rows)

    return DatasetIndex(
        kind=header["kind"],
        band=int(header["band"]),
        normalize=bool(header["normalize"]),
        step=int(header["step"]),
        window=int(header["window"]),
        starts=tuple(int(s) for s in header["starts"]),
        source_fingerprint=header["source_fingerprint"],
        series=blocks["series"],
        upper=blocks["upper"],
        lower=blocks["lower"],
        kim=blocks["kim"],
        moments=blocks["moments"],
        dims=dims,
    )
