"""The query driver consumers get from ``DatasetIndex.searcher()``.

:class:`IndexSearcher` marries a :class:`~repro.index.DatasetIndex`'s
precomputed artifacts to the :class:`~repro.lowerbounds.cascade.
CascadeBatch` machinery: candidate envelopes are served from the index
instead of rebuilt, every query scans candidates best-first by their
cheapest bound, the LB_Improved stage is on by default, and self-join
workloads (LOOCV, discords, motifs) can share exact distances across
queries.  All of it is lossless -- the neighbour and distance returned
are bit-identical to the index-free scan (see the cascade module's
proofs) -- so consumers treat the searcher as a drop-in fast path.

Observability: each search increments ``index.hits``; precomputed
artifacts served instead of recomputed accumulate under
``index.artifacts_reused``; candidates pruned by the LB_Improved stage
under ``index.lb_improved_prunes``; cache-served exact distances under
``index.reused_exact``.  The counters are derived from the same
:class:`~repro.lowerbounds.cascade.CascadeStats` the result carries,
so trace snapshots and returned stats can be parity-checked.
"""

from __future__ import annotations

from math import inf
from typing import Optional, Sequence

from ..lowerbounds.cascade import BatchNearest, CascadeBatch, LowerBoundCascade
from ..obs import trace as _obs
from ..runtime import Runtime
from .dataset_index import IndexMismatchError

__all__ = ["IndexScan", "IndexSearcher"]


class IndexSearcher:
    """Repeated exact 1-NN over one index (see the module notes).

    Parameters
    ----------
    index:
        The :class:`~repro.index.DatasetIndex` to serve.
    runtime:
        Execution context, per :mod:`repro.runtime` (``None`` = the
        process default, resolved *now*).  Searches are inherently
        sequential (best-so-far pruning), so only the backend
        matters; it is pinned at construction exactly like
        :class:`~repro.lowerbounds.cascade.LowerBoundCascade` pins
        its own.
    use_improved:
        Run the LB_Improved stage (default on: with envelopes
        precomputed, the second Lemire pass is cheap relative to the
        DPs it prunes).
    best_first:
        Scan candidates cheapest-bound-first (lossless; default on).
    share_exact:
        Keep a symmetric exact-distance cache across self-join
        queries (callers must then pass ``query_index``).
    """

    def __init__(
        self,
        index,
        runtime: Optional[Runtime] = None,
        use_improved: bool = True,
        best_first: bool = True,
        share_exact: bool = False,
    ):
        self.index = index
        self.runtime = Runtime.resolve(runtime).serial()
        self._batch = CascadeBatch(
            index.candidate_series(), index.band,
            use_improved=use_improved,
            best_first=best_first,
            share_exact=share_exact,
            runtime=self.runtime,
            candidate_envelopes=index.candidate_envelopes(),
        )

    def nearest(
        self,
        query: Sequence[float],
        exclude: Optional[int] = None,
        query_index: Optional[int] = None,
    ) -> BatchNearest:
        """Exact nearest indexed series to ``query``.

        ``exclude`` skips one candidate (leave-one-out);
        ``query_index`` declares that ``query`` *is* indexed series
        number ``query_index`` (its stored envelope is reused and,
        with ``share_exact``, its distances feed the cache).  The
        result's ``index`` addresses the indexed collection -- map
        through ``index.starts`` for stream offsets.
        """
        self._check_query_length(query)
        query_envelope = (
            self.index.envelope(query_index)
            if query_index is not None else None
        )
        result = self._batch.nearest(
            query, query_envelope=query_envelope,
            query_index=query_index, exclude=exclude,
        )
        self._record(result.artifacts_reused, result.stats)
        return result

    def scan(
        self,
        query: Sequence[float],
        query_index: Optional[int] = None,
    ) -> "IndexScan":
        """A candidate-at-a-time view for callers that drive their own
        loop (top-k, discords, motifs); see :class:`IndexScan`."""
        self._check_query_length(query)
        return IndexScan(self, query, query_index=query_index)

    def _check_query_length(self, query: Sequence[float]) -> None:
        """Refuse a query whose length disagrees with the index.

        The stored envelopes are band-``band`` envelopes of
        ``index.length``-point series, so a differently sized query
        would be bounded against envelopes of the wrong length --
        plausible-looking, silently wrong results.  Length is the one
        ``require()`` precondition a searcher can check on its own,
        so it does (stride/step mismatches still need ``require``).
        """
        if len(query) != self.index.length:
            raise IndexMismatchError(
                f"query has length {len(query)} but the index stores "
                f"series of length {self.index.length}; envelopes "
                "cannot be reused across lengths -- rebuild the index "
                "or fix the query"
            )
        nested = bool(query) and hasattr(query[0], "__len__")
        query_dims = len(query[0]) if nested else 1
        if query_dims != self.index.dims:
            raise IndexMismatchError(
                f"query has {query_dims} channel(s) but the index "
                f"stores {self.index.dims}-dimensional series; "
                "per-channel envelopes cannot be reused across "
                "dimensionalities -- rebuild the index or fix the "
                "query"
            )

    def _record(self, artifacts_reused: int, stats) -> None:
        _obs.incr("index.hits")
        if artifacts_reused:
            _obs.incr("index.artifacts_reused", artifacts_reused)
        if stats.pruned_improved:
            _obs.incr("index.lb_improved_prunes", stats.pruned_improved)
        if stats.reused_exact:
            _obs.incr("index.reused_exact", stats.reused_exact)


class IndexScan:
    """One query's pruned distances to indexed series, on demand.

    Wraps a :class:`~repro.lowerbounds.cascade.LowerBoundCascade` whose
    query envelope (for self-join queries) and candidate envelopes all
    come from the index.  :meth:`distance` follows the cascade
    contract: the value is the exact cDTW distance when finite, and
    ``inf`` exactly when the candidate provably exceeds
    ``best_so_far``.  Decisions are bit-identical to an index-free
    cascade with the same flags, so scan-order-sensitive consumers
    (discord's doubly-abandoning loops, top-k's heap threshold) keep
    their exact results.

    The per-query ``index.*`` counters are recorded when the scan is
    garbage collected or :meth:`close` is called explicitly.
    """

    def __init__(
        self,
        searcher: IndexSearcher,
        query: Sequence[float],
        query_index: Optional[int] = None,
    ):
        self._searcher = searcher
        batch = searcher._batch
        query_envelope = (
            searcher.index.envelope(query_index)
            if query_index is not None else None
        )
        self._cascade: LowerBoundCascade = batch.cascade_for(
            query, query_envelope=query_envelope
        )
        self._batch = batch
        self._closed = False

    @property
    def stats(self):
        """The scan's :class:`~repro.lowerbounds.cascade.CascadeStats`."""
        return self._cascade.stats

    def distance(self, index: int, best_so_far: float = inf) -> float:
        """cDTW(query, indexed series ``index``), or ``inf`` if it
        provably exceeds ``best_so_far``."""
        return self._cascade.distance(
            self._batch.candidates[index], best_so_far=best_so_far,
            _candidate_envelope=self._batch.candidate_envelope(index),
        )

    def close(self) -> None:
        """Flush this scan's ``index.*`` counters (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._searcher._record(
            self._cascade.artifacts_reused, self._cascade.stats
        )

    def __enter__(self) -> "IndexScan":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
