"""Selecting between the two FastDTW variants by name.

Experiments take a ``fastdtw_variant`` parameter so every benchmark can
run against either the reference-layout implementation (what the
paper's timings, and the citing literature, actually used -- the
default) or our optimised one (FastDTW's best case; see the ablation
benchmarks).
"""

from __future__ import annotations

from typing import Callable

from .fastdtw import fastdtw
from .fastdtw_reference import fastdtw_reference

FASTDTW_VARIANTS = ("reference", "optimized")


def resolve_fastdtw(variant: str) -> Callable:
    """Return the FastDTW callable for a variant name.

    >>> resolve_fastdtw("optimized") is fastdtw
    True
    """
    if variant == "reference":
        return fastdtw_reference
    if variant == "optimized":
        return fastdtw
    raise ValueError(
        f"unknown FastDTW variant {variant!r}; pick from {FASTDTW_VARIANTS}"
    )
