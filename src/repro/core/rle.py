"""Run-length-encoded exact DTW: the compressed-domain fast path.

Step-like series (smart-meter traces, quantised telemetry, on/off
signals) compress losslessly into runs ``(value, length)``.  Froese et
al. ("Fast Exact Dynamic Time Warping on Run-Length Encoded Time
Series", arXiv:1903.03003) show the DTW lattice of two such series
decomposes into ``k x l`` constant-cost *blocks* (one per run pair),
and that the DP only ever needs the *boundary* of each block: the
optimal distance is computable exactly in ``O(k*m + l*n)`` instead of
``O(n*m)``, where ``k``/``l`` are the run counts.  For heavily
compressed series this is orders of magnitude cheaper -- and still
**exact**, which is this repo's whole thesis: engineering exact DTW
beats approximating it.

The block recurrence
--------------------
Every cell of block ``(p, q)`` (spanning ``h = n_p`` rows and
``w = m_q`` columns) has the same local cost ``c = cost(v_p, w_q)``.
A cheapest monotone path from a boundary entry to an interior cell of
the block is then any *staircase* with the fewest cells; a path
entering from the top boundary at relative column ``b`` and leaving at
relative cell ``(r, s)`` (1-indexed) costs ``c * max(r, s - b)``
beyond the entry value, and symmetrically ``c * max(r - a, s)`` from a
left entry at row ``a``.  The bottom row of a block therefore is, for
``s = 1..w`` (``T``/``L`` the incoming top/left boundary arrays,
``T[0] == L[0]`` the corner)::

    B[s] = min( min_{b in [max(0,s-h)..s]} T[b] + c*h,        # g1
                c*s + min_{b <= s-h-1}    (T[b] - c*b),       # g2
                min_{a in [0..h-s]}        L[a] + c*(h-a),    # g3
                c*s + min_{a >= max(0,h-s+1)} L[a] )          # g4

computable in ``O(h + w)`` per block with a monotone deque (g1) and
running prefix/suffix minima (g2-g4); the right column is the same
computation with roles swapped.  The corner cell belongs to both; this
implementation canonically assigns it the bottom-row expression so
propagation is deterministic and backend-invariant.

Exactness regime
----------------
The block form evaluates ``c * <integer>`` where the dense engine sums
``c`` repeatedly.  Whenever the arithmetic is exactly representable --
e.g. values on a dyadic grid (multiples of ``2**-10``, magnitudes
below ``2**6``, lengths below ``2**13`` keep every partial sum within
float64's 53 bits) -- both forms are **bit-identical**, and the
property suites pin that down.  For arbitrary floats the two forms may
differ in final ulps (documented, and why the serve layer only
auto-routes datasets whose samples sit on such a grid, see
``RleSeries.exactness_grid``); the *python vs numpy* block kernels are
bit-identical for all inputs because they evaluate the same elementary
expressions.

Windowed variant
----------------
:func:`rle_cdtw` applies a :class:`~repro.core.window.Window`:
fully-admitted blocks use the boundary recurrence, fully-excluded
blocks propagate ``inf``, and blocks straddling the band boundary fall
back to a dense mini-DP over their admitted cells -- bit-identical to
the dense engine's treatment of those cells for *all* inputs.

Cell accounting: a full block charges ``h + w`` cells (its computed
boundary), a straddling block its admitted cells, an excluded block
zero -- summing to exactly ``k*m + l*n`` for the unwindowed case,
which is also the :func:`repro.core.measures.pair_cost_model` price
the batch scheduler uses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from math import copysign, inf, isfinite
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..obs import trace as _obs
from .cost import CostLike, cost_name, resolve_cost
from .engine import DtwResult
from .path import WarpingPath
from .window import Window

__all__ = [
    "RleSeries",
    "as_rle",
    "rle_dtw",
    "rle_cdtw",
    "rle_block_python",
]


@dataclass(frozen=True)
class RleSeries:
    """A run-length-encoded series: parallel ``(value, length)`` runs.

    Immutable and validated: every run value is finite, every run
    length a positive integer.  With ``tolerance=0`` (the default),
    :meth:`encode` followed by :meth:`decode` is a bit-exact float64
    round-trip -- ``-0.0`` and ``0.0`` start separate runs, so even
    signed zeros survive.
    """

    values: Tuple[float, ...]
    lengths: Tuple[int, ...]

    def __post_init__(self) -> None:
        values = tuple(float(v) for v in self.values)
        lengths = tuple(self.lengths)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "lengths", lengths)
        if len(values) != len(lengths):
            raise ValueError(
                f"{len(values)} run values but {len(lengths)} run lengths"
            )
        if not values:
            raise ValueError("series is empty")
        for i, v in enumerate(values):
            if not isfinite(v):
                raise ValueError(f"run {i}: value is not finite ({v!r})")
        for i, r in enumerate(lengths):
            if isinstance(r, bool) or not isinstance(r, int) or r < 1:
                raise ValueError(
                    f"run {i}: length must be a positive int, got {r!r}"
                )

    # -- codec ---------------------------------------------------------

    @classmethod
    def encode(
        cls,
        x: Sequence[float],
        tolerance: float = 0.0,
        name: str = "series",
    ) -> "RleSeries":
        """Encode a raw series into runs.

        ``tolerance=0`` (default) is exact: a run extends only over
        bit-identical float64 samples (``==`` plus matching zero
        signs).  A positive tolerance merges samples within
        ``tolerance`` of the run's *first* sample (lossy; decoding
        reproduces that anchor).

        Rejects empty series and non-finite samples with the same
        errors as :func:`repro.core.validate.validate_series`.
        """
        if tolerance < 0.0:
            raise ValueError("tolerance must be non-negative")
        if len(x) == 0:
            raise ValueError(f"{name} is empty")
        values: List[float] = []
        lengths: List[int] = []
        anchor = 0.0
        for i, raw in enumerate(x):
            v = float(raw)
            if not isfinite(v):
                raise ValueError(
                    f"{name}: sample {i} is not finite ({raw!r})"
                )
            if values and _same_run(v, anchor, tolerance):
                lengths[-1] += 1
            else:
                values.append(v)
                lengths.append(1)
                anchor = v
        return cls(tuple(values), tuple(lengths))

    def decode(self) -> List[float]:
        """Expand back to a raw sample list."""
        return [v for v, r in zip(self.values, self.lengths) for _ in range(r)]

    # -- shape ---------------------------------------------------------

    @property
    def n(self) -> int:
        """Decoded length (sum of run lengths)."""
        return sum(self.lengths)

    @property
    def run_count(self) -> int:
        """Number of runs (``k`` in the O(k*m + l*n) bound)."""
        return len(self.values)

    @property
    def compression_ratio(self) -> float:
        """Decoded length over run count (1.0 = incompressible)."""
        return self.n / self.run_count

    def exactness_grid(
        self, fraction_bits: int = 10, magnitude: float = 64.0
    ) -> bool:
        """Whether every value sits on a dyadic grid safe for bit-exactness.

        True iff each run value is an exact multiple of
        ``2**-fraction_bits`` with ``|v| <= magnitude``.  On such data
        every partial sum the dense DP forms is exactly representable,
        so the block DP's multiplication form is bit-identical to the
        dense engine (see the module docstring); the serve layer only
        auto-routes datasets passing this check.
        """
        scale = float(1 << fraction_bits)
        for v in self.values:
            if abs(v) > magnitude:
                return False
            scaled = v * scale
            if scaled != int(scaled):
                return False
        return True

    def __len__(self) -> int:
        return self.n


def _same_run(v: float, anchor: float, tolerance: float) -> bool:
    if tolerance == 0.0:
        return v == anchor and copysign(1.0, v) == copysign(1.0, anchor)
    return abs(v - anchor) <= tolerance


RleLike = Union[RleSeries, Sequence[float]]


def as_rle(x: RleLike, name: str = "series") -> RleSeries:
    """Coerce raw samples to :class:`RleSeries` (pass-through if already)."""
    if isinstance(x, RleSeries):
        return x
    return RleSeries.encode(x, name=name)


# -- the O(h + w) block boundary kernel (pure python) ----------------------


def rle_block_python(
    T: Sequence[float], L: Sequence[float], c: float, h: int, w: int
) -> Tuple[List[float], List[float]]:
    """Bottom row ``B`` and right column ``R`` of one constant-cost block.

    ``T`` (length ``w + 1``) and ``L`` (length ``h + 1``) are the
    incoming top/left boundary arrays (``T[0] == L[0]`` is the shared
    corner); ``c`` the block's local cost.  Returns ``(B, R)`` with
    ``B[s-1] = D(h, s)`` and ``R[r-1] = D(r, w)`` in block-relative
    coordinates.  The corner ``R[h-1]`` is canonically assigned
    ``B[w-1]``.  This is the ``KernelSet.rle_block`` contract; the
    NumPy twin is bit-identical for all inputs.
    """
    B = _boundary_row(T, L, c, h, w)
    R = _boundary_row(L, T, c, w, h)
    R[h - 1] = B[w - 1]
    return B, R


def _boundary_row(
    T: Sequence[float], L: Sequence[float], c: float, h: int, w: int
) -> List[float]:
    """``B[s-1] = min(g1, g2, g3, g4)`` per the module docstring."""
    ch = c * h
    # g3: prefix minima of L[a] + c*(h-a)
    pp = [inf] * (h + 1)
    best = inf
    for a in range(h + 1):
        v = L[a] + c * (h - a)
        if v < best:
            best = v
        pp[a] = best
    # g4: suffix minima of L
    sl = [inf] * (h + 2)
    for a in range(h, -1, -1):
        la = L[a]
        sl[a] = la if la < sl[a + 1] else sl[a + 1]
    out = [inf] * w
    dq = deque([0])  # g1 window indices, T-values increasing
    g2min = inf  # exact prefix min of T[b] - c*b over b <= s-h-1
    nxt = 0  # next index to fold into g2min
    for s in range(1, w + 1):
        hi_gone = s - h - 1
        while nxt <= hi_gone:
            v = T[nxt] - c * nxt
            if v < g2min:
                g2min = v
            nxt += 1
        lo_b = s - h
        while dq and dq[0] < lo_b:
            dq.popleft()
        tb = T[s]
        while dq and T[dq[-1]] >= tb:
            dq.pop()
        dq.append(s)
        val = T[dq[0]] + ch
        g2 = c * s + g2min
        if g2 < val:
            val = g2
        if s <= h:
            g3 = pp[h - s]
            if g3 < val:
                val = g3
            g4 = c * s + sl[h - s + 1]
        else:
            g4 = c * s + sl[0]
        if g4 < val:
            val = g4
        out[s - 1] = val
    return out


# -- the global block DP ---------------------------------------------------


def _rle_dp(
    rx: RleSeries,
    ry: RleSeries,
    cost_fn,
    window: Optional[Window],
    block_fn,
    keep_blocks: bool,
):
    """Sweep all ``k x l`` blocks; returns ``(distance, cells, blocks)``.

    ``row_bound`` carries ``D(row-1, col)`` for ``col = -1..m-1``
    across block rows (index 0 is the virtual column ``-1``:
    ``D(-1,-1) = 0``, everything else ``inf`` -- exactly the dense
    engine's implicit boundary).  ``blocks`` maps ``(p, q)`` to the
    stored boundary state for path recovery (full windows only).
    """
    xv, xl = rx.values, rx.lengths
    yv, yl = ry.values, ry.lengths
    k, l = len(xv), len(yv)
    m = ry.n
    ranges = window.ranges if window is not None else None
    row_bound: List[float] = [0.0] + [inf] * m
    cells = 0
    blocks: Optional[Dict] = {} if keep_blocks else None
    top = 0
    for p in range(k):
        h = xl[p]
        vp = xv[p]
        new_row: List[float] = [inf] * (m + 1)
        L: List[float] = []
        left = 0
        for q in range(l):
            w = yl[q]
            c = cost_fn(vp, yv[q])
            if not c >= 0.0:  # catches negatives and NaN
                raise ValueError(
                    "rle measures require finite non-negative local "
                    f"costs, got {c!r}"
                )
            T = row_bound[left:left + w + 1]
            if q == 0:
                L = [row_bound[0]] + [inf] * h
            if ranges is None:
                B, R = block_fn(T, L, c, h, w)
                B, R = list(B), list(R)
                cells += h + w
            else:
                right = left + w - 1
                admitted = 0
                full = True
                for i in range(top, top + h):
                    lo_i, hi_i = ranges[i]
                    a0 = lo_i if lo_i > left else left
                    a1 = hi_i if hi_i < right else right
                    if a0 > left or a1 < right:
                        full = False
                    if a1 >= a0:
                        admitted += a1 - a0 + 1
                if full:
                    B, R = block_fn(T, L, c, h, w)
                    B, R = list(B), list(R)
                    cells += h + w
                elif admitted == 0:
                    B = [inf] * w
                    R = [inf] * h
                else:
                    B, R = _straddle_dp(T, L, c, h, w, ranges, top, left)
                    cells += admitted
            if keep_blocks:
                blocks[(p, q)] = (T, L, c, h, w, top, left)
            new_row[left + 1:left + w + 1] = B
            L = [T[w]] + R
            left += w
        row_bound = new_row
        top += h
    return row_bound[m], cells, blocks


def _straddle_dp(T, L, c, h, w, ranges, top, left):
    """Dense mini-DP over a block straddling the window boundary.

    Evaluates exactly the admitted cells with the standard three-way
    recurrence, seeded from the block's boundary arrays -- cell for
    cell the computation the dense engine performs there, so the
    values are bit-identical for arbitrary inputs (``c + best``
    matches the engine's ``local + best``).
    """
    prev = list(T)
    R = [inf] * h
    for a in range(1, h + 1):
        lo_i, hi_i = ranges[top + a - 1]
        cur = [inf] * (w + 1)
        cur[0] = L[a]
        for s in range(1, w + 1):
            j = left + s - 1
            if lo_i <= j <= hi_i:
                best = prev[s - 1]
                if prev[s] < best:
                    best = prev[s]
                if cur[s - 1] < best:
                    best = cur[s - 1]
                cur[s] = c + best
        R[a - 1] = cur[w]
        prev = cur
    return prev[1:], R


# -- path recovery ---------------------------------------------------------


def _blocks_path(blocks: Dict, rx: RleSeries, ry: RleSeries) -> WarpingPath:
    """Backtrack a global optimal path through the stored block boundaries.

    At each visited block the entry minimising ``T[b] + c*max(r, s-b)``
    / ``L[a] + c*max(r-a, s)`` is rescanned (direct expressions -- no
    float equality against the stored exit value, whose expression
    form may differ in ulps), then the diagonal-first staircase from
    the entry to the exit is emitted.  Diagonal-first keeps every
    emitted cell interior to the block for all three entry kinds.
    """
    k, l = rx.run_count, ry.run_count
    rev: List[Tuple[int, int]] = []
    p, q = k - 1, l - 1
    r, s = rx.lengths[p], ry.lengths[q]
    while True:
        T, L, c, h, w, top, left = blocks[(p, q)]
        kind, idx, best = "", -1, inf
        for b in range(s + 1):
            rem = s - b
            v = T[b] + c * (r if r >= rem else rem)
            if v < best:
                best, kind, idx = v, "T", b
        for a in range(r + 1):
            rem = r - a
            v = L[a] + c * (rem if rem >= s else s)
            if v < best:
                best, kind, idx = v, "L", a
        if not kind:
            raise RuntimeError("rle backtracking escaped the lattice")
        r0, s0 = (0, idx) if kind == "T" else (idx, 0)
        d = r - r0 if r - r0 < s - s0 else s - s0
        stair = [(r0 + t, s0 + t) for t in range(1, d + 1)]
        if r > r0 + d:
            stair += [(t, s) for t in range(r0 + d + 1, r + 1)]
        elif s > s0 + d:
            stair += [(r, u) for u in range(s0 + d + 1, s + 1)]
        for rr, ss in reversed(stair):
            rev.append((top + rr - 1, left + ss - 1))
        if idx == 0:  # corner entry: diagonal block step (or done)
            if p == 0 and q == 0:
                break
            if p == 0 or q == 0:
                raise RuntimeError("rle backtracking escaped the lattice")
            p, q = p - 1, q - 1
            r, s = rx.lengths[p], ry.lengths[q]
        elif kind == "T":
            p -= 1
            r, s = rx.lengths[p], idx
        else:
            q -= 1
            r, s = idx, ry.lengths[q]
    rev.reverse()
    return WarpingPath(rev)


# -- public measures -------------------------------------------------------


def _block_kernel(backend: Optional[str]):
    from .kernels import get_kernels

    return get_kernels(backend).rle_block


def rle_dtw(
    x: RleLike,
    y: RleLike,
    cost: CostLike = "squared",
    return_path: bool = False,
    backend: Optional[str] = None,
) -> DtwResult:
    """Exact full DTW on run-length-encoded series in O(k*m + l*n).

    Accepts raw sample sequences (encoded on the fly, tolerance 0) or
    pre-encoded :class:`RleSeries`.  The distance equals
    :func:`repro.core.dtw.dtw` on the decoded series -- bit-identical
    whenever the arithmetic is exactly representable (see the module
    docstring's exactness regime), within ulps otherwise.  ``cells``
    counts the boundary cells actually computed, ``k*m + l*n``.

    The local cost must be non-negative (true of the built-ins); a
    negative custom cost would break the staircase optimality the
    block recurrence rests on, so it is rejected.
    """
    rx, ry = as_rle(x, "series x"), as_rle(y, "series y")
    block_fn = _block_kernel(backend)
    trace = _obs._ACTIVE
    if trace is None:
        return _rle_dtw_impl(rx, ry, cost, return_path, block_fn)
    with _obs.span("dp"):
        result = _rle_dtw_impl(rx, ry, cost, return_path, block_fn)
    _obs.record_dp(trace, result)
    trace.incr("rle.runs", rx.run_count + ry.run_count)
    trace.incr("rle.block_cells", result.cells)
    return result


def _rle_dtw_impl(rx, ry, cost, return_path, block_fn):
    fn = resolve_cost(cost)
    distance, cells, blocks = _rle_dp(rx, ry, fn, None, block_fn, return_path)
    path = _blocks_path(blocks, rx, ry) if return_path else None
    return DtwResult(distance, path, cells, cost_name(cost))


def rle_cdtw(
    x: RleLike,
    y: RleLike,
    window: Optional[float] = None,
    band: Optional[int] = None,
    cost: CostLike = "squared",
    return_path: bool = False,
    backend: Optional[str] = None,
) -> DtwResult:
    """Windowed (Sakoe-Chiba) exact DTW on run-length-encoded series.

    Same constraint convention as :func:`repro.core.cdtw.cdtw`:
    exactly one of ``window=`` (fraction) or ``band=`` (cells).
    Blocks fully inside the band use the O(h + w) boundary recurrence;
    straddling blocks run a dense mini-DP over their admitted cells
    (bit-identical to the dense engine there for all inputs).

    ``return_path=True`` recovers the path with a dense banded DP over
    the decoded series (native banded backtracking is not implemented;
    the distance and cells still come from the block DP).
    """
    if (window is None) == (band is None):
        raise ValueError("specify exactly one of window= or band=")
    rx, ry = as_rle(x, "series x"), as_rle(y, "series y")
    from .kernels import banded_window, fraction_window

    n, m = rx.n, ry.n
    if window is not None:
        win = fraction_window(n, m, window)
    else:
        win = banded_window(n, m, band)
    block_fn = _block_kernel(backend)
    trace = _obs._ACTIVE
    if trace is None:
        return _rle_cdtw_impl(rx, ry, win, cost, return_path, block_fn)
    with _obs.span("dp"):
        result = _rle_cdtw_impl(rx, ry, win, cost, return_path, block_fn)
    _obs.record_dp(trace, result)
    trace.incr("rle.runs", rx.run_count + ry.run_count)
    trace.incr("rle.block_cells", result.cells)
    return result


def _rle_cdtw_impl(rx, ry, win, cost, return_path, block_fn):
    fn = resolve_cost(cost)
    distance, cells, _ = _rle_dp(rx, ry, fn, win, block_fn, False)
    path = None
    if return_path:
        from .engine import _dp_over_window

        dense = _dp_over_window(
            rx.decode(), ry.decode(), win, cost, True, None, None
        )
        path = dense.path
    return DtwResult(distance, path, cells, cost_name(cost))
