"""Compression-ratio-vs-speedup benchmark for the RLE fast path.

The compressed-domain DP (:mod:`repro.core.rle`) evaluates
``k*m + l*n`` boundary cells instead of the dense lattice, so its win
is a function of how step-like the input is.  This benchmark sweeps
quantization grids over the power-demand workload
(:func:`repro.datasets.power.midnight_hour_pair` with ``quantize=``):
a fine grid leaves the noise intact (runs of length ~1, RLE loses), a
coarse grid collapses the traces into long runs (RLE wins) -- tracing
out the crossover curve.

Every level asserts **bit-exact distance agreement** between the
compressed and dense engines (the quantized traces sit on the dyadic
exactness grid, where agreement is provable, not approximate).  The
CLI gate (``python -m repro rle bench``) exits nonzero unless every
distance matches exactly *and* the compressed path wins wall-clock at
the highest compression level -- an approximation or a slowdown is a
regression, the same standard the paper holds FastDTW to.

The paper harness (``timing/``, ``experiments/``) never routes
through RLE; this report quantifies the opt-in headroom only.
"""

from __future__ import annotations

import time
from math import inf
from typing import List, Optional, Sequence

from ..datasets.power import midnight_hour_pair
from ..runtime import Runtime
from .measures import measure_fn
from .rle import RleSeries

__all__ = ["format_rle_report", "rle_benchmark"]

SCHEMA = "repro.rle.bench/v1"

#: dyadic quantization steps, fine to coarse (low to high compression)
DEFAULT_STEPS = (2.0 ** -8, 2.0 ** -6, 2.0 ** -4, 2.0 ** -2)


def _best_seconds(fn, repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` runs of ``fn`` (noise floor)."""
    best = inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _contender(label: str, fn, pairs, repeats: int) -> dict:
    """Distances, cells and best-of wall-clock of ``fn`` over pairs."""
    results = [fn(a, b) for a, b in pairs]
    seconds = _best_seconds(
        lambda: [fn(a, b) for a, b in pairs], repeats
    )
    return {
        "label": label,
        "distances": [r.distance for r in results],
        "cells": sum(r.cells for r in results),
        "seconds": seconds,
    }


def rle_benchmark(
    length: int = 450,
    n_pairs: int = 2,
    quantize_steps: Sequence[float] = DEFAULT_STEPS,
    repeats: int = 3,
    window: float = 0.1,
    seed: int = 0,
    runtime: Optional[Runtime] = None,
) -> dict:
    """Sweep quantization levels; return a JSON-ready report.

    Each level generates ``n_pairs`` power-trace pairs quantized to
    that step, runs full DTW and banded cDTW through both the dense
    and the compressed engines on the runtime's backend, and records
    compression ratio, cells, wall-clock and exact agreement.
    """
    if not quantize_steps:
        raise ValueError("need at least one quantization step")
    rt = Runtime.resolve(runtime).serial()
    backend = rt.backend_name
    dense_full = measure_fn("dtw", backend=backend)
    dense_band = measure_fn("cdtw", window=window, backend=backend)
    rle_full = measure_fn("rle_dtw", backend=backend)
    rle_band = measure_fn("rle_cdtw", window=window, backend=backend)

    # scale the canonical peak positions with the length so short
    # smoke workloads stay valid; at the default length=450 these are
    # exactly the midnight_hour_pair defaults
    peaks_a = tuple(round(p * length / 450) for p in (60, 170, 260))
    peaks_b = tuple(round(p * length / 450) for p in (90, 140, 413))

    levels: List[dict] = []
    for step in quantize_steps:
        traces = [
            midnight_hour_pair(
                length=length, peaks_a=peaks_a, peaks_b=peaks_b,
                quantize=step, seed=seed + i,
            )
            for i in range(n_pairs)
        ]
        pairs = [(p.night_a, p.night_b) for p in traces]
        encoded = [
            RleSeries.encode(s) for pair in pairs for s in pair
        ]
        ratio = sum(len(e) for e in encoded) / sum(
            e.run_count for e in encoded
        )
        on_grid = all(e.exactness_grid() for e in encoded)

        variants = {}
        for name, dense_fn, rle_fn in (
            ("full", dense_full, rle_full),
            ("banded", dense_band, rle_band),
        ):
            dense = _contender("dense", dense_fn, pairs, repeats)
            rle = _contender("rle", rle_fn, pairs, repeats)
            variants[name] = {
                "dense_seconds": dense["seconds"],
                "rle_seconds": rle["seconds"],
                "speedup": dense["seconds"] / rle["seconds"],
                "dense_cells": dense["cells"],
                "rle_cells": rle["cells"],
                "agree": dense["distances"] == rle["distances"],
            }
        levels.append({
            "quantize": step,
            "compression_ratio": ratio,
            "on_exactness_grid": on_grid,
            "variants": variants,
        })

    agree = all(
        level["on_exactness_grid"]
        and all(v["agree"] for v in level["variants"].values())
        for level in levels
    )
    top = max(levels, key=lambda level: level["compression_ratio"])
    wins = top["variants"]["full"]["speedup"] > 1.0
    return {
        "benchmark": SCHEMA,
        "note": (
            "compression-ratio-vs-speedup curve of the compressed-"
            "domain exact DTW over quantized power traces; every "
            "level requires bit-exact distance agreement with the "
            "dense engine.  The paper harness (timing/, experiments/)"
            " never routes through RLE; this measures the opt-in "
            "fast path only."
        ),
        "workload": {
            "kind": "quantized_power_pairs",
            "length": length,
            "n_pairs": n_pairs,
            "quantize_steps": [float(s) for s in quantize_steps],
            "repeats": repeats,
            "window": window,
            "seed": seed,
            "backend": backend,
        },
        "levels": levels,
        "agree": agree,
        "compressed_wins_at_high_compression": wins,
        "passed": agree and wins,
    }


def format_rle_report(report: dict) -> List[str]:
    """Human-readable lines for the CLI."""
    workload = report["workload"]
    lines = [
        f"rle compression-vs-speedup benchmark ({report['benchmark']})",
        f"  workload: {workload['n_pairs']} power pairs of length "
        f"{workload['length']} per level, window={workload['window']}, "
        f"backend={workload['backend']}",
    ]
    for level in report["levels"]:
        full = level["variants"]["full"]
        banded = level["variants"]["banded"]
        lines.append(
            f"  quantize=2^{level['quantize'].hex().split('p')[-1]:>3s} "
            f"ratio={level['compression_ratio']:7.2f}  "
            f"full: {full['speedup']:5.2f}x "
            f"({full['rle_cells']}/{full['dense_cells']} cells)  "
            f"banded: {banded['speedup']:5.2f}x"
        )
    lines.append(
        f"  all distances bit-identical to dense: {report['agree']}"
    )
    lines.append(
        "  compressed wins wall-clock at the highest compression: "
        f"{report['compressed_wins_at_high_compression']}"
    )
    return lines
