"""Downsample-then-DTW: the paper's sane approximation baseline.

Section 3.4 observes that most long series can be downsampled "by a
factor of eight or more" with statistically indistinguishable
accuracy.  That suggests the obvious honest competitor to FastDTW when
an approximation is genuinely wanted: PAA both series by a factor
``f`` and run *exact* banded DTW at the coarse resolution -- no
recursion, no per-level windows, O((N/f)^2 * w) work with the plain
engine's constants.

Unlike FastDTW this approximation's failure mode is transparent
(everything below the PAA scale is gone -- by design), and its cost
model is the cDTW model evaluated at ``N/f``.  The extension
benchmark (`benchmarks/extensions/test_bench_downsample.py`) shows it
an order of magnitude faster than FastDTW; which of the two errs more
depends on the workload, and both errors are reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .cdtw import cdtw
from .dtw import dtw
from .engine import DtwResult
from .paa import paa_factor
from .validate import validate_pair


@dataclass(frozen=True)
class DownsampledDtwResult:
    """Outcome of a downsample-then-DTW computation.

    ``distance`` is rescaled by the factor (each coarse cell stands
    for ``factor`` original samples), so values are comparable to
    full-resolution DTW distances of the same pair.  ``cells`` counts
    the coarse DP's cells.
    """

    distance: float
    factor: int
    coarse_length: int
    cells: int


def downsampled_dtw(
    x: Sequence[float],
    y: Sequence[float],
    factor: int,
    window: Optional[float] = None,
    band: Optional[int] = None,
    cost: str = "squared",
) -> DownsampledDtwResult:
    """Approximate DTW by exact (c)DTW over PAA-reduced series.

    Parameters
    ----------
    x, y:
        The series; must each have at least ``factor`` samples.
    factor:
        PAA reduction factor (``1`` degenerates to plain (c)DTW).
    window, band:
        Optional Sakoe-Chiba constraint *at the coarse resolution*
        (``window`` as a fraction still refers to the coarse length;
        ``band`` in coarse cells).  Omitting both runs Full DTW on the
        coarse series.
    cost:
        Local cost name.

    Returns
    -------
    DownsampledDtwResult
        With ``distance`` scaled by ``factor`` to approximate the
        full-resolution accumulated cost.
    """
    if factor < 1:
        raise ValueError("factor must be positive")
    validate_pair(x, y)
    if len(x) < factor or len(y) < factor:
        raise ValueError("series shorter than the downsampling factor")
    cx = paa_factor(x, factor)
    cy = paa_factor(y, factor)
    if window is None and band is None:
        result: DtwResult = dtw(cx, cy, cost=cost)
    else:
        result = cdtw(cx, cy, window=window, band=band, cost=cost)
    return DownsampledDtwResult(
        distance=result.distance * factor,
        factor=factor,
        coarse_length=len(cx),
        cells=result.cells,
    )
