"""All-pairs distance matrices under any of the package's measures.

Clustering (Fig. 7), the pairwise timing sweeps (Figs. 1 and 4) and
several examples all need the same thing: a symmetric distance matrix
over a set of series.  This module provides it once, parameterised by
measure name, with the package's cell accounting carried through.

Construction runs on the :mod:`repro.batch` engine: ``workers=1``
(the default) computes in-process, exactly as the original serial
loop did; ``workers=N`` fans the ``k * (k - 1) / 2`` independent
pairs out over a process pool with identical results -- same
distances, same cell totals, same ordering -- as enforced by the
equivalence suite in ``tests/batch/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .cost import CostLike
from .measures import MEASURES, validate_measure

__all__ = ["DistanceMatrix", "MEASURES", "distance_matrix"]


@dataclass(frozen=True)
class DistanceMatrix:
    """A symmetric all-pairs distance matrix with provenance.

    Attributes
    ----------
    values:
        Row-major ``k x k`` matrix, zero diagonal.
    measure:
        The measure name that produced it.
    cells:
        Total DP cells evaluated across all pairs (0 for Euclidean).
    """

    values: Tuple[Tuple[float, ...], ...]
    measure: str
    cells: int

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, ij: Tuple[int, int]) -> float:
        i, j = ij
        return self.values[i][j]

    def as_lists(self) -> List[List[float]]:
        """Mutable copy, e.g. for :func:`repro.cluster.linkage.linkage`."""
        return [list(row) for row in self.values]

    def nearest_to(self, i: int) -> int:
        """Index of the series nearest to series ``i`` (not itself).

        Ties break towards the smallest index, deterministically.
        """
        k = len(self.values)
        if k < 2:
            raise ValueError("need at least two series")
        others = [j for j in range(k) if j != i]
        return min(others, key=lambda j: self.values[i][j])


def distance_matrix(
    series: Sequence[Sequence[float]],
    measure: str = "cdtw",
    window: Optional[float] = None,
    band: Optional[int] = None,
    radius: int = 1,
    cost: CostLike = "squared",
    workers: int = 1,
    backend: Optional[str] = None,
    executor=None,
) -> DistanceMatrix:
    """Compute the all-pairs matrix under one measure.

    Parameters
    ----------
    series:
        At least two series (equal lengths required only by
        ``"euclidean"``).
    measure:
        One of :data:`repro.core.measures.MEASURES`.
    window, band:
        cDTW constraint (exactly one, for ``measure="cdtw"``).
    radius:
        FastDTW radius (for the fastdtw measures).
    cost:
        Local cost name.
    workers:
        Worker processes for the pairwise batch (1 = in-process
        serial; results are identical for any value).
    backend:
        Kernel backend for the exact DP measures, per
        :mod:`repro.core.kernels` (``None`` = process default;
        ``"numpy"`` vectorises the batch with bit-identical
        distances and cells).
    executor:
        A :class:`repro.batch.BatchExecutor` (or ``"default"``) for
        a persistent warm pool -- worthwhile when many matrices are
        built over the same or evolving series sets.  Identical
        results.

    Returns
    -------
    DistanceMatrix
    """
    validate_measure(measure)
    if len(series) < 2:
        raise ValueError("need at least two series")

    from ..batch.engine import batch_distances

    result = batch_distances(
        series,
        measure=measure,
        window=window,
        band=band,
        radius=radius,
        cost=cost,
        workers=workers,
        backend=backend,
        executor=executor,
    )
    k = len(series)
    values = [[0.0] * k for _ in range(k)]
    for (i, j), d in zip(result.pairs, result.distances):
        values[i][j] = values[j][i] = d
    return DistanceMatrix(
        values=tuple(tuple(row) for row in values),
        measure=measure,
        cells=result.cells,
    )
