"""All-pairs distance matrices under any of the package's measures.

Clustering (Fig. 7), the pairwise timing sweeps (Figs. 1 and 4) and
several examples all need the same thing: a symmetric distance matrix
over a set of series.  This module provides it once, parameterised by
measure name, with the package's cell accounting carried through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .cdtw import cdtw
from .dtw import dtw
from .euclidean import euclidean
from .fastdtw import fastdtw
from .fastdtw_reference import fastdtw_reference

MEASURES = ("dtw", "cdtw", "fastdtw", "fastdtw_reference", "euclidean")


@dataclass(frozen=True)
class DistanceMatrix:
    """A symmetric all-pairs distance matrix with provenance.

    Attributes
    ----------
    values:
        Row-major ``k x k`` matrix, zero diagonal.
    measure:
        The measure name that produced it.
    cells:
        Total DP cells evaluated across all pairs (0 for Euclidean).
    """

    values: Tuple[Tuple[float, ...], ...]
    measure: str
    cells: int

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, ij: Tuple[int, int]) -> float:
        i, j = ij
        return self.values[i][j]

    def as_lists(self) -> List[List[float]]:
        """Mutable copy, e.g. for :func:`repro.cluster.linkage.linkage`."""
        return [list(row) for row in self.values]

    def nearest_to(self, i: int) -> int:
        """Index of the series nearest to series ``i`` (not itself)."""
        k = len(self.values)
        if k < 2:
            raise ValueError("need at least two series")
        others = [j for j in range(k) if j != i]
        return min(others, key=lambda j: self.values[i][j])


def distance_matrix(
    series: Sequence[Sequence[float]],
    measure: str = "cdtw",
    window: Optional[float] = None,
    band: Optional[int] = None,
    radius: int = 1,
    cost: str = "squared",
) -> DistanceMatrix:
    """Compute the all-pairs matrix under one measure.

    Parameters
    ----------
    series:
        At least two series (equal lengths required only by
        ``"euclidean"``).
    measure:
        One of :data:`MEASURES`.
    window, band:
        cDTW constraint (exactly one, for ``measure="cdtw"``).
    radius:
        FastDTW radius (for the fastdtw measures).
    cost:
        Local cost name.

    Returns
    -------
    DistanceMatrix
    """
    if measure not in MEASURES:
        raise ValueError(f"unknown measure {measure!r}; pick from {MEASURES}")
    if len(series) < 2:
        raise ValueError("need at least two series")

    def fn(x, y):
        if measure == "dtw":
            return dtw(x, y, cost=cost)
        if measure == "cdtw":
            return cdtw(x, y, window=window, band=band, cost=cost)
        if measure == "fastdtw":
            return fastdtw(x, y, radius=radius, cost=cost)
        if measure == "fastdtw_reference":
            return fastdtw_reference(x, y, radius=radius, cost=cost)
        return euclidean(x, y, cost=cost)

    k = len(series)
    values = [[0.0] * k for _ in range(k)]
    cells = 0
    for i in range(k):
        for j in range(i + 1, k):
            result = fn(series[i], series[j])
            d = result if isinstance(result, float) else result.distance
            cells += getattr(result, "cells", 0)
            values[i][j] = values[j][i] = d
    return DistanceMatrix(
        values=tuple(tuple(row) for row in values),
        measure=measure,
        cells=cells,
    )
