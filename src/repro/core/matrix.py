"""All-pairs distance matrices under any of the package's measures.

Clustering (Fig. 7), the pairwise timing sweeps (Figs. 1 and 4) and
several examples all need the same thing: a symmetric distance matrix
over a set of series.  This module provides it once, parameterised by
measure name, with the package's cell accounting carried through.

Construction runs on the :mod:`repro.batch` engine under a
:class:`repro.runtime.Runtime` execution context: the default is the
exact in-process serial loop, while a parallel context fans the
``k * (k - 1) / 2`` independent pairs out over a process pool with
identical results -- same distances, same cell totals, same ordering
-- as enforced by the equivalence suite in ``tests/batch/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..runtime import Runtime, _resolve_legacy
from .cost import CostLike
from .measures import MEASURES, validate_measure

__all__ = ["DistanceMatrix", "MEASURES", "distance_matrix"]


@dataclass(frozen=True)
class DistanceMatrix:
    """A symmetric all-pairs distance matrix with provenance.

    Attributes
    ----------
    values:
        Row-major ``k x k`` matrix, zero diagonal.
    measure:
        The measure name that produced it.
    cells:
        Total DP cells evaluated across all pairs (0 for Euclidean).
    """

    values: Tuple[Tuple[float, ...], ...]
    measure: str
    cells: int

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, ij: Tuple[int, int]) -> float:
        i, j = ij
        return self.values[i][j]

    def as_lists(self) -> List[List[float]]:
        """Mutable copy, e.g. for :func:`repro.cluster.linkage.linkage`."""
        return [list(row) for row in self.values]

    def nearest_to(self, i: int) -> int:
        """Index of the series nearest to series ``i`` (not itself).

        Ties break towards the smallest index, deterministically.
        """
        k = len(self.values)
        if k < 2:
            raise ValueError("need at least two series")
        others = [j for j in range(k) if j != i]
        return min(others, key=lambda j: self.values[i][j])


def distance_matrix(
    series: Sequence[Sequence[float]],
    measure: str = "cdtw",
    window: Optional[float] = None,
    band: Optional[int] = None,
    radius: int = 1,
    cost: CostLike = "squared",
    runtime: Optional[Runtime] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    executor=None,
) -> DistanceMatrix:
    """Compute the all-pairs matrix under one measure.

    Parameters
    ----------
    series:
        At least two series (equal lengths required only by
        ``"euclidean"``).
    measure:
        One of :data:`repro.core.measures.MEASURES`.
    window, band:
        cDTW constraint (exactly one, for ``measure="cdtw"``).
    radius:
        FastDTW radius (for the fastdtw measures).
    cost:
        Local cost name.
    runtime:
        The execution context -- kernel backend, worker count,
        executor, chunk policy -- per :mod:`repro.runtime` (``None``
        = the process default; built-in default is the in-process
        serial computation).  Results are identical for every
        context; only the wall-clock changes.
    workers, backend, executor:
        Deprecated per-knob overrides of the corresponding ``runtime``
        fields; passing any emits a :class:`DeprecationWarning`.

    Returns
    -------
    DistanceMatrix
    """
    rt = _resolve_legacy(
        "distance_matrix", runtime, workers=workers, backend=backend,
        executor=executor,
    )
    validate_measure(measure)
    if len(series) < 2:
        raise ValueError("need at least two series")

    from ..batch.engine import batch_distances

    result = batch_distances(
        series,
        measure=measure,
        window=window,
        band=band,
        radius=radius,
        cost=cost,
        runtime=rt,
    )
    k = len(series)
    values = [[0.0] * k for _ in range(k)]
    for (i, j), d in zip(result.pairs, result.distances):
        values[i][j] = values[j][i] = d
    return DistanceMatrix(
        values=tuple(tuple(row) for row in values),
        measure=measure,
        cells=result.cells,
    )
