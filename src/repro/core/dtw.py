"""Full (unconstrained) Dynamic Time Warping.

Full DTW -- ``cDTW_100`` in the paper's notation -- explores the whole
``n x m`` lattice and therefore costs O(n*m) time.  The paper's Case D
experiment (Fig. 6) pits this against FastDTW; everywhere else the
constrained :func:`repro.core.cdtw.cdtw` is the right tool.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .cost import CostLike
from .engine import DtwResult, dp_over_window
from .validate import ensure_univariate_pair, validate_pair
from .window import Window


def dtw(
    x: Sequence[float],
    y: Sequence[float],
    cost: CostLike = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
) -> DtwResult:
    """Exact, unconstrained DTW distance between ``x`` and ``y``.

    Parameters
    ----------
    x, y:
        Non-empty 1-D series (any float sequence).
    cost:
        Local cost function: ``"squared"`` (default), ``"abs"`` or a
        callable ``f(a, b) -> float``.
    return_path:
        Also recover the optimal warping path.
    abandon_above:
        Optional early-abandoning threshold (see
        :func:`repro.core.engine.dp_over_window`).

    Returns
    -------
    DtwResult
        With ``distance`` equal to the minimum accumulated local cost
        over all valid warping paths.

    Examples
    --------
    >>> dtw([0.0, 1.0, 2.0], [0.0, 1.0, 1.0, 2.0]).distance
    0.0
    """
    validate_pair(x, y)
    ensure_univariate_pair(x, y, "dtw()")
    window = Window.full(len(x), len(y))
    return dp_over_window(
        x, y, window, cost=cost, return_path=return_path,
        abandon_above=abandon_above,
    )


def windowed_dtw(
    x: Sequence[float],
    y: Sequence[float],
    window: Window,
    cost: CostLike = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
) -> DtwResult:
    """Exact DTW restricted to an arbitrary :class:`Window`.

    This is the primitive FastDTW's refinement step uses: the window is
    the coarse path projected up one level and dilated by the radius.
    The returned distance is the minimum over paths *inside the
    window*, which upper-bounds the unconstrained distance.
    """
    return dp_over_window(
        x, y, window, cost=cost, return_path=return_path,
        abandon_above=abandon_above,
    )
