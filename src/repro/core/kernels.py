"""The kernel backend registry: one switch for every repeated-use path.

The paper's head-to-head timings must run the pure-Python engine for
both contestants ("same language, same hardware") -- but everything
*around* that comparison (classification, clustering, similarity
search, batch matrices) is production-style repeated use, where the
ROADMAP wants hardware speed.  This module lets those consumers pick
their compute kernels without knowing who provides them:

* ``backend="python"`` -- the pure engine
  (:func:`repro.core.engine.dp_over_window` and the scalar
  lower-bound implementations).  The default; bit-for-bit the
  behaviour every consumer had before the registry existed.
* ``backend="numpy"`` -- the vectorised kernels of
  :mod:`repro.core.numpy_backend`.  DTW distances, cells, paths and
  abandon decisions are bit-identical to the pure engine (enforced by
  ``tests/core/test_numpy_parity.py``); the batched lower bounds may
  differ from the scalar ones in final ulps (they are bounds, not
  distances) while remaining valid.

Consumers resolve a backend *per call* (``backend=`` keyword, with
``None`` meaning "the process default") and fetch a
:class:`KernelSet`.  The process default is ``"python"`` unless
changed via :func:`set_default_backend` or, scoped, the
:func:`use_backend` context manager.

:mod:`repro.timing` and :mod:`repro.experiments` never consult the
registry: they pin ``backend="python"`` explicitly, so flipping the
process default cannot silently corrupt a paper reproduction (see
``repro.timing.runner.PINNED_BACKEND``).
"""

from __future__ import annotations

import importlib.util
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

from .window import Window

__all__ = [
    "KernelSet",
    "available_backends",
    "default_backend",
    "set_default_backend",
    "use_backend",
    "resolve_backend",
    "get_kernels",
]


@dataclass(frozen=True)
class KernelSet:
    """The callables one backend contributes, under a fixed contract.

    Attributes
    ----------
    name:
        The backend's registry name.
    dtw:
        ``dtw(x, y, window, cost="squared", return_path=False,
        abandon_above=None, suffix_bound=None) -> DtwResult`` -- the
        windowed DP, semantics of
        :func:`repro.core.engine.dp_over_window`.
    envelope:
        ``envelope(x, band) -> Envelope`` (Lemire warping envelope).
    lb_kim:
        ``lb_kim(query, candidates, cost="squared", tiers=2)`` ->
        per-candidate bounds (sequence-like of floats).
    lb_keogh:
        ``lb_keogh(query_envelope, candidates, squared=True,
        abandon_above=None)`` -> per-candidate bounds.
    lb_keogh_reversed:
        ``lb_keogh_reversed(query, candidates, band, squared=True,
        abandon_above=None)`` -> per-candidate bounds (envelopes built
        over the candidates).
    suffix_gap_bounds:
        ``suffix_gap_bounds(x, y_envelope, squared=True)`` -> per-row
        suffix bounds for cumulative early abandoning.
    dtw_chunk:
        ``dtw_chunk(xs, ys, window, cost="squared", count=None)`` ->
        per-pair distances for one shape-homogeneous stacked chunk.
        Every distance is bit-identical to ``dtw`` on the same pair;
        rows at index ``count`` and beyond are padding and are never
        read (see :func:`repro.core.numpy_backend.dtw_chunk`).
    envelope_chunk:
        ``envelope_chunk(series, band, count=None)`` ->
        ``(upper, lower)`` envelope stacks, row ``t`` value-identical
        to ``envelope(series[t], band)``.
    lb_keogh_chunk:
        ``lb_keogh_chunk(upper, lower, candidates, squared=True,
        abandon_above=None, count=None)`` -> per-candidate bounds,
        each bit-identical to the scalar
        :func:`repro.lowerbounds.lb_keogh.lb_keogh` (unlike
        ``lb_keogh``, whose batched reduction may differ in final
        ulps).  Envelopes may be shared (1-D) or stacked per row.
    rle_block:
        ``rle_block(T, L, c, h, w) -> (B, R)`` -- bottom row and
        right column of one constant-cost RLE-DTW block from its
        boundary arrays (the O(h + w) recurrence of
        :mod:`repro.core.rle`).  Both backends are bit-identical for
        all inputs.
    lb_improved_chunk:
        ``lb_improved_chunk(upper, lower, candidates, query, band,
        squared=True, keogh=None, abandon_above=None, count=None)`` ->
        per-candidate two-pass Lemire bounds, each bit-identical to
        the scalar :func:`repro.lowerbounds.lb_improved.lb_improved`
        (values and abandon decisions).  ``keogh`` optionally supplies
        the full first-pass bounds so a cascade can reuse its
        forward-Keogh stage.
    dtw_nd:
        ``dtw_nd(x, y, window, cost="squared", return_path=False,
        abandon_above=None) -> DtwResult`` -- the windowed *dependent*
        multivariate DP over ``(length, dims)`` series, bit-identical
        to :func:`repro.core.engine.dp_over_window` with the resolved
        vector cost of :mod:`repro.core.multivariate` (channels
        accumulate sequentially per lattice cell).
    dtw_nd_chunk:
        ``dtw_nd_chunk(xs, ys, window, cost="squared", count=None)``
        -> per-pair dependent distances for one shape-homogeneous
        ``(chunk, length, dims)`` stack; rows at index ``count`` and
        beyond are padding and are never read.
    envelope_nd_chunk:
        ``envelope_nd_chunk(series, band, count=None)`` ->
        ``(upper, lower)`` per-channel envelope stacks shaped
        ``(count, length, dims)``; row ``t`` channel ``k`` is
        value-identical to ``envelope(series[t][:, k], band)``.
    lb_keogh_nd_chunk:
        ``lb_keogh_nd_chunk(upper, lower, candidates, squared=True,
        abandon_above=None, count=None)`` -> per-candidate summed
        per-channel LB_Keogh bounds, admissible for both ``cdtw_i``
        and ``cdtw_d`` and bit-identical across backends.
    """

    name: str
    dtw: Callable
    envelope: Callable
    lb_kim: Callable
    lb_keogh: Callable
    lb_keogh_reversed: Callable
    suffix_gap_bounds: Callable
    dtw_chunk: Callable
    envelope_chunk: Callable
    lb_keogh_chunk: Callable
    lb_improved_chunk: Callable
    rle_block: Callable
    dtw_nd: Callable
    dtw_nd_chunk: Callable
    envelope_nd_chunk: Callable
    lb_keogh_nd_chunk: Callable


def _build_python() -> KernelSet:
    from ..lowerbounds.envelope import envelope
    from ..lowerbounds.lb_keogh import lb_keogh, lb_keogh_reversed
    from ..lowerbounds.lb_kim import lb_kim
    from ..search.cumulative import suffix_gap_bounds
    from .engine import dp_over_window
    from .rle import rle_block_python

    def lb_kim_each(query, candidates, cost="squared", tiers=2):
        return [lb_kim(query, c, cost=cost, tiers=tiers)
                for c in candidates]

    def lb_keogh_each(query_envelope, candidates, squared=True,
                      abandon_above=None):
        return [lb_keogh(query_envelope, c, squared=squared,
                         abandon_above=abandon_above)
                for c in candidates]

    def lb_keogh_reversed_each(query, candidates, band, squared=True,
                               abandon_above=None):
        return [lb_keogh_reversed(query, c, band, squared=squared,
                                  abandon_above=abandon_above)
                for c in candidates]

    def _real_rows(stack, count):
        if count is None:
            return list(stack)
        if not 0 <= count <= len(stack):
            raise ValueError(
                f"count={count} outside the chunk's 0..{len(stack)} rows"
            )
        return list(stack[:count])

    def dtw_chunk_each(xs, ys, window, cost="squared", count=None):
        # the per-pair dispatch the chunk contract falls back to on
        # this backend; pad rows are dropped before any computation
        xr, yr = _real_rows(xs, count), _real_rows(ys, count)
        return [
            dp_over_window(x, y, window, cost=cost).distance
            for x, y in zip(xr, yr)
        ]

    def envelope_chunk_each(series, band, count=None):
        envs = [envelope(s, band) for s in _real_rows(series, count)]
        return ([e.upper for e in envs], [e.lower for e in envs])

    def lb_improved_chunk_each(upper, lower, candidates, query, band,
                               squared=True, keogh=None,
                               abandon_above=None, count=None):
        from ..lowerbounds.envelope import Envelope
        from ..lowerbounds.lb_improved import lb_improved

        rows = _real_rows(candidates, count)
        shared = len(upper) > 0 and not hasattr(upper[0], "__len__")
        out = []
        for t, cand in enumerate(rows):
            up = upper if shared else upper[t]
            lo = lower if shared else lower[t]
            env = Envelope(band, list(up), list(lo))
            first = None if keogh is None else keogh[t]
            out.append(lb_improved(
                query, cand, band, squared=squared,
                abandon_above=abandon_above, query_envelope=env,
                keogh=first,
            ))
        return out

    def lb_keogh_chunk_each(upper, lower, candidates, squared=True,
                            abandon_above=None, count=None):
        from ..lowerbounds.lb_keogh import _gap_cost

        rows = _real_rows(candidates, count)
        # a 1-D envelope (first element is a scalar) is shared by
        # every candidate; otherwise it is a per-row stack
        shared = len(upper) > 0 and not hasattr(upper[0], "__len__")
        out = []
        for t, cand in enumerate(rows):
            up = upper if shared else upper[t]
            lo = lower if shared else lower[t]
            if len(cand) != len(up):
                raise ValueError(
                    f"candidate length {len(cand)} != envelope length "
                    f"{len(up)}"
                )
            total = 0.0
            for k, v in enumerate(cand):
                total += _gap_cost(v, lo[k], up[k], squared)
                if abandon_above is not None and total > abandon_above:
                    total = float("inf")
                    break
            out.append(total)
        return out

    def dtw_nd_one(x, y, window, cost="squared", return_path=False,
                   abandon_above=None):
        from .multivariate import _resolve_vector_cost

        return dp_over_window(
            x, y, window, cost=_resolve_vector_cost(cost),
            return_path=return_path, abandon_above=abandon_above,
        )

    def dtw_nd_chunk_each(xs, ys, window, cost="squared", count=None):
        from .multivariate import _resolve_vector_cost

        vcost = _resolve_vector_cost(cost)
        xr, yr = _real_rows(xs, count), _real_rows(ys, count)
        return [
            float(dp_over_window(x, y, window, cost=vcost).distance)
            for x, y in zip(xr, yr)
        ]

    def envelope_nd_chunk_each(series, band, count=None):
        uppers, lowers = [], []
        for s in _real_rows(series, count):
            dims = len(s[0])
            envs = [
                envelope([float(v[k]) for v in s], band)
                for k in range(dims)
            ]
            uppers.append(
                [tuple(e.upper[i] for e in envs) for i in range(len(s))]
            )
            lowers.append(
                [tuple(e.lower[i] for e in envs) for i in range(len(s))]
            )
        return uppers, lowers

    def lb_keogh_nd_chunk_each(upper, lower, candidates, squared=True,
                               abandon_above=None, count=None):
        from ..lowerbounds.lb_keogh import _gap_cost

        rows = _real_rows(candidates, count)
        # a (length, dims) envelope (first sample's first component is
        # a scalar) is shared by every candidate; otherwise it is a
        # per-row (chunk, length, dims) stack
        shared = (
            len(upper) > 0 and not hasattr(upper[0][0], "__len__")
        )
        out = []
        for t, cand in enumerate(rows):
            up = upper if shared else upper[t]
            lo = lower if shared else lower[t]
            if len(cand) != len(up):
                raise ValueError(
                    f"candidate length {len(cand)} != envelope length "
                    f"{len(up)}"
                )
            total = 0.0
            for k in range(len(cand[0])):
                channel = 0.0
                for i, v in enumerate(cand):
                    channel += _gap_cost(
                        v[k], lo[i][k], up[i][k], squared
                    )
                total += channel
            if abandon_above is not None and total > abandon_above:
                total = float("inf")
            out.append(total)
        return out

    return KernelSet(
        name="python",
        dtw=dp_over_window,
        envelope=envelope,
        lb_kim=lb_kim_each,
        lb_keogh=lb_keogh_each,
        lb_keogh_reversed=lb_keogh_reversed_each,
        suffix_gap_bounds=suffix_gap_bounds,
        dtw_chunk=dtw_chunk_each,
        envelope_chunk=envelope_chunk_each,
        lb_keogh_chunk=lb_keogh_chunk_each,
        lb_improved_chunk=lb_improved_chunk_each,
        rle_block=rle_block_python,
        dtw_nd=dtw_nd_one,
        dtw_nd_chunk=dtw_nd_chunk_each,
        envelope_nd_chunk=envelope_nd_chunk_each,
        lb_keogh_nd_chunk=lb_keogh_nd_chunk_each,
    )


def _build_numpy() -> KernelSet:
    from ..obs import trace as _obs
    from . import numpy_backend as nb
    from .rle_numpy import rle_block_numpy

    def dtw(x, y, window, cost="squared", return_path=False,
            abandon_above=None, suffix_bound=None):
        # mirror the pure engine's observability hook so the ``dp.*``
        # counters are backend-invariant (the counter-parity contract)
        trace = _obs._ACTIVE
        if trace is None:
            return nb.dtw_numpy(
                x, y, window=window, cost=cost, return_path=return_path,
                abandon_above=abandon_above, suffix_bound=suffix_bound,
            )
        with _obs.span("dp"):
            result = nb.dtw_numpy(
                x, y, window=window, cost=cost, return_path=return_path,
                abandon_above=abandon_above, suffix_bound=suffix_bound,
            )
        _obs.record_dp(trace, result)
        return result

    def dtw_chunk(xs, ys, window, cost="squared", count=None):
        # the stacked kernel bypasses the per-call dp hooks, so the
        # dp.* counters are charged here: one call and
        # ``window.cell_count()`` lattice cells per real pair, exactly
        # what the per-pair path records (the counter-parity contract)
        with _obs.span("dp"):
            distances = nb.dtw_chunk(
                xs, ys, window, cost=cost, count=count
            )
        _obs.incr("dp.calls", len(distances))
        _obs.incr("dp.cells", window.cell_count() * len(distances))
        return distances

    def dtw_nd(x, y, window, cost="squared", return_path=False,
               abandon_above=None):
        # same observability mirror as the scalar ``dtw`` wrapper
        trace = _obs._ACTIVE
        if trace is None:
            return nb.dtw_nd_numpy(
                x, y, window=window, cost=cost, return_path=return_path,
                abandon_above=abandon_above,
            )
        with _obs.span("dp"):
            result = nb.dtw_nd_numpy(
                x, y, window=window, cost=cost, return_path=return_path,
                abandon_above=abandon_above,
            )
        _obs.record_dp(trace, result)
        return result

    def dtw_nd_chunk(xs, ys, window, cost="squared", count=None):
        # same counter-parity accounting as the scalar ``dtw_chunk``
        with _obs.span("dp"):
            distances = nb.dtw_nd_chunk(
                xs, ys, window, cost=cost, count=count
            )
        _obs.incr("dp.calls", len(distances))
        _obs.incr("dp.cells", window.cell_count() * len(distances))
        return distances

    return KernelSet(
        name="numpy",
        dtw=dtw,
        envelope=nb.envelope_numpy,
        lb_kim=nb.lb_kim_batch,
        lb_keogh=nb.lb_keogh_batch,
        lb_keogh_reversed=nb.lb_keogh_reversed_batch,
        suffix_gap_bounds=nb.suffix_gap_bounds_numpy,
        dtw_chunk=dtw_chunk,
        envelope_chunk=nb.envelope_chunk,
        lb_keogh_chunk=nb.lb_keogh_chunk,
        lb_improved_chunk=nb.lb_improved_chunk,
        rle_block=rle_block_numpy,
        dtw_nd=dtw_nd,
        dtw_nd_chunk=dtw_nd_chunk,
        envelope_nd_chunk=nb.envelope_nd_chunk,
        lb_keogh_nd_chunk=nb.lb_keogh_nd_chunk,
    )


def _numpy_available() -> bool:
    return importlib.util.find_spec("numpy") is not None


_BUILDERS: Dict[str, Callable[[], KernelSet]] = {
    "python": _build_python,
    "numpy": _build_numpy,
}
_AVAILABILITY: Dict[str, Callable[[], bool]] = {
    "python": lambda: True,
    "numpy": _numpy_available,
}
_BUILT: Dict[str, KernelSet] = {}
_DEFAULT = "python"


def available_backends() -> Tuple[str, ...]:
    """Names of the backends usable in this environment."""
    return tuple(
        name for name in _BUILDERS if _AVAILABILITY[name]()
    )


def default_backend() -> str:
    """The process-wide default backend name."""
    return _DEFAULT


def resolve_backend(backend: Optional[str]) -> str:
    """Turn a ``backend=`` argument into a concrete backend name.

    ``None`` resolves to the process default; anything else must name
    an available backend.
    """
    name = _DEFAULT if backend is None else backend
    if name not in _BUILDERS:
        raise ValueError(
            f"unknown backend {name!r}; pick from {tuple(_BUILDERS)}"
        )
    if not _AVAILABILITY[name]():
        raise ValueError(
            f"backend {name!r} is not available in this environment"
        )
    return name


def set_default_backend(backend: str) -> str:
    """Set the process default; returns the previous default.

    Affects every subsequent call that passes ``backend=None``.  The
    paper-reproduction harnesses are immune: they pin
    ``backend="python"`` explicitly.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = resolve_backend(backend)
    return previous


@contextmanager
def use_backend(backend: str):
    """Scoped :func:`set_default_backend`::

        with use_backend("numpy"):
            matrix = distance_matrix(series, measure="cdtw", window=0.1)
    """
    previous = set_default_backend(backend)
    try:
        yield
    finally:
        set_default_backend(previous)


def get_kernels(backend: Optional[str] = None) -> KernelSet:
    """The :class:`KernelSet` for ``backend`` (default: process default)."""
    name = resolve_backend(backend)
    built = _BUILT.get(name)
    if built is None:
        built = _BUILT[name] = _BUILDERS[name]()
    return built


# -- shared window memoisation -------------------------------------------
#
# Consumers that dispatch per pair (kNN loops, batched matrices) build
# the same Window over and over; construction is O(n) Python, which
# matters once the DP itself runs at NumPy speed.


@lru_cache(maxsize=512)
def full_window(n: int, m: int) -> Window:
    """Memoised :meth:`Window.full`."""
    return Window.full(n, m)


@lru_cache(maxsize=512)
def banded_window(n: int, m: int, band: int) -> Window:
    """Memoised :meth:`Window.band`."""
    return Window.band(n, m, band)


@lru_cache(maxsize=512)
def fraction_window(n: int, m: int, window: float) -> Window:
    """Memoised :meth:`Window.from_fraction`."""
    return Window.from_fraction(n, m, window)
