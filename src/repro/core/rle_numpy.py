"""NumPy twin of the RLE block boundary kernel.

Evaluates exactly the same elementary expressions as
:func:`repro.core.rle.rle_block_python` -- ``T[b] - c*b`` prefix
minima, ``L[a] + c*(h-a)`` prefix minima, ``L`` suffix minima, and a
two-pass reshape sliding-window minimum for the in-window group -- so
the two backends are bit-identical for *all* float inputs: minima are
rounding-free and every add/multiply appears in the same form on both
sides (the parity property suite pins this down).
"""

from __future__ import annotations

from math import inf
from typing import List, Sequence, Tuple

import numpy as np


def rle_block_numpy(
    T: Sequence[float], L: Sequence[float], c: float, h: int, w: int
) -> Tuple[List[float], List[float]]:
    """The ``KernelSet.rle_block`` contract, vectorised.

    See :func:`repro.core.rle.rle_block_python` for semantics; returns
    plain-float lists so downstream consumers (serve JSON answers)
    never see ``np.float64``.
    """
    Ta = np.asarray(T, dtype=np.float64)
    La = np.asarray(L, dtype=np.float64)
    B = _boundary_row_numpy(Ta, La, c, h, w)
    R = _boundary_row_numpy(La, Ta, c, w, h)
    R[h - 1] = B[w - 1]
    return B.tolist(), R.tolist()


def _boundary_row_numpy(
    T: np.ndarray, L: np.ndarray, c: float, h: int, w: int
) -> np.ndarray:
    s = np.arange(1, w + 1)
    # g1: sliding min of T over windows [max(0, s-h) .. s], + c*h
    padded = np.concatenate([np.full(h, inf), T])
    g1 = _sliding_min(padded, h + 1)[1:] + c * h
    # g2: c*s + prefix min of T[b] - c*b over b <= s-h-1
    pm = np.minimum.accumulate(T - c * np.arange(w + 1))
    g2 = np.full(w, inf)
    far = s >= h + 1
    if far.any():
        g2[far] = c * s[far] + pm[s[far] - h - 1]
    # g3: prefix min of L[a] + c*(h-a), evaluated at a = h-s
    pp = np.minimum.accumulate(L + c * (h - np.arange(h + 1)))
    g3 = np.full(w, inf)
    near = s <= h
    if near.any():
        g3[near] = pp[h - s[near]]
    # g4: c*s + suffix min of L from max(0, h-s+1)
    sl = np.minimum.accumulate(L[::-1])[::-1]
    g4 = c * s + sl[np.where(near, h - s + 1, 0)]
    return np.minimum.reduce([g1, g2, g3, g4])


def _sliding_min(a: np.ndarray, width: int) -> np.ndarray:
    """Minima of every length-``width`` window of ``a`` (two-pass trick)."""
    n = a.size
    nblocks = -(-n // width)
    padded = np.full(nblocks * width, inf)
    padded[:n] = a
    tiles = padded.reshape(nblocks, width)
    pre = np.minimum.accumulate(tiles, axis=1).ravel()
    suf = np.minimum.accumulate(tiles[:, ::-1], axis=1)[:, ::-1].ravel()
    return np.minimum(suf[:n - width + 1], pre[width - 1:n])
