"""FastDTW (Salvador & Chan, 2007), re-implemented from the paper.

FastDTW approximates Full DTW in three recursive steps:

1. **Coarsen** -- halve both series (:func:`repro.core.paa.halve`);
2. **Solve** -- recursively find a warping path at the coarse
   resolution (base case: Full DTW once a series is short enough);
3. **Refine** -- project the coarse path up to the fine lattice, dilate
   it by the radius ``r`` in every direction
   (:meth:`repro.core.window.Window.expand_path`), and run exact DTW
   restricted to that window.

The radius trades accuracy for time: Salvador & Chan show each level
evaluates roughly ``N * (8r + 14)`` cells, linear in ``N``.  The paper
under reproduction demonstrates that in practice this "linear" cost
(with its recursion overhead and large constant) loses to banded cDTW's
``N * (2wN + 1)`` cells for every realistic ``N`` and ``w``.

:func:`fastdtw` returns the same :class:`DtwResult` as the exact
routines (the path is always computed; the recursion needs it), plus --
with ``keep_levels=True`` -- a per-level trace used by the Appendix A
"wrong-way warping" analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..obs import trace as _obs
from .cost import CostLike, cost_name
from .dtw import dtw
from .engine import DtwResult, dp_over_window
from .paa import halve
from .path import WarpingPath
from .validate import ensure_univariate_pair, validate_pair
from .window import Window


@dataclass(frozen=True)
class FastDtwLevel:
    """Trace of one resolution level of a FastDTW run.

    Attributes
    ----------
    n, m:
        Series lengths at this level.
    window_cells:
        Cells the refinement DP evaluated at this level (for the base
        case, the full coarse lattice).
    path:
        The warping path found at this level.
    distance:
        The (approximate) distance found at this level.
    """

    n: int
    m: int
    window_cells: int
    path: WarpingPath
    distance: float


@dataclass(frozen=True)
class FastDtwResult:
    """Outcome of a FastDTW run.

    ``distance``/``path``/``cells`` mirror
    :class:`repro.core.engine.DtwResult`; ``cells`` sums the DP cells
    of *every* recursion level, which is the honest cost of the
    algorithm.  ``levels`` (coarsest first) is populated only when
    ``keep_levels=True`` was requested.
    """

    distance: float
    path: WarpingPath
    cells: int
    cost: str
    radius: int
    levels: Optional[Tuple[FastDtwLevel, ...]] = None
    abandoned: bool = False

    def root(self) -> float:
        """``sqrt(distance)``, matching :meth:`DtwResult.root`."""
        from math import sqrt

        return sqrt(self.distance)


def fastdtw(
    x: Sequence[float],
    y: Sequence[float],
    radius: int = 1,
    cost: CostLike = "squared",
    keep_levels: bool = False,
    abandon_above: Optional[float] = None,
) -> FastDtwResult:
    """Approximate DTW distance via Salvador & Chan's FastDTW.

    Parameters
    ----------
    x, y:
        Non-empty 1-D series.
    radius:
        The accuracy/speed knob ``r >= 0``: how many cells beyond the
        projected coarse path the refinement may explore.  Larger radii
        approximate Full DTW better but evaluate more cells; the
        recursion bottoms out with exact DTW once a series has at most
        ``radius + 2`` samples, exactly as in the reference code.
    cost:
        Local cost, as everywhere in :mod:`repro.core`.
    keep_levels:
        Record a :class:`FastDtwLevel` per recursion level (coarsest
        first) for post-hoc analysis.
    abandon_above:
        Early-abandon the final refinement DP (the one that produces
        the returned distance) once every cell of a row exceeds this
        threshold; coarser levels still run in full (their paths seed
        the refinement window).  An abandoned result has
        ``distance=inf``, no path and ``abandoned=True``.

    Returns
    -------
    FastDtwResult
        ``distance`` is an *upper bound* on (approximation of) the Full
        DTW distance; ``path`` is always present.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    validate_pair(x, y)
    ensure_univariate_pair(x, y, "fastdtw()")
    trace: Optional[List[FastDtwLevel]] = [] if keep_levels else None
    _obs.incr("fastdtw.calls")
    with _obs.span("fastdtw"):
        result, total_cells = _fastdtw_rec(
            list(x), list(y), radius, cost, trace, abandon_above
        )
    return FastDtwResult(
        distance=result.distance,
        path=result.path,
        cells=total_cells,
        cost=cost_name(cost),
        radius=radius,
        levels=tuple(trace) if trace is not None else None,
        abandoned=result.abandoned,
    )


def _fastdtw_rec(
    x: List[float],
    y: List[float],
    radius: int,
    cost: CostLike,
    trace: Optional[List[FastDtwLevel]],
    abandon_above: Optional[float] = None,
) -> Tuple[DtwResult, int]:
    # ``abandon_above`` applies only to this level's final DP; the
    # recursive call omits it because the coarse path must be complete
    # to seed the refinement window
    n, m = len(x), len(y)
    min_size = radius + 2
    _obs.incr("fastdtw.levels")

    if n <= min_size or m <= min_size:
        base = dtw(
            x, y, cost=cost, return_path=True,
            abandon_above=abandon_above,
        )
        if trace is not None:
            trace.append(
                FastDtwLevel(n, m, base.cells, base.path, base.distance)
            )
        return base, base.cells

    with _obs.span("coarsen"):
        sx, sy = halve(x), halve(y)
    coarse, coarse_cells = _fastdtw_rec(sx, sy, radius, cost, trace)
    with _obs.span("window"):
        window = Window.expand_path(coarse.path, n, m, radius)
    refined = dp_over_window(
        x, y, window, cost=cost, return_path=True,
        abandon_above=abandon_above,
    )
    if trace is not None:
        trace.append(
            FastDtwLevel(n, m, refined.cells, refined.path, refined.distance)
        )
    return refined, coarse_cells + refined.cells


def fastdtw_cell_estimate(n: int, radius: int) -> int:
    """Salvador & Chan's analytic cell count ``N * (8r + 14)``.

    A rough model of the cells FastDTW touches across all levels for
    equal-length series of length ``n``; the benchmarks compare it to
    the exact measured count reported by :class:`FastDtwResult`.
    """
    if n < 1 or radius < 0:
        raise ValueError("need n >= 1 and radius >= 0")
    return n * (8 * radius + 14)
