"""FastDTW with the reference implementation's data structures.

Two FastDTWs live in this package, and the difference between them *is*
one of the paper's findings:

* :func:`repro.core.fastdtw.fastdtw` -- our optimised variant: per-row
  range windows, array-based DP, shared with cDTW.  Use it for
  accuracy experiments and the best case the algorithm can make.
* :func:`fastdtw_reference` (this module) -- the algorithm with the
  data structures of Salvador & Chan's published implementation (and
  of the widely-used ``fastdtw`` PyPI package that the hundreds of
  citing papers actually ran): the window is a *list of (i, j) cells*,
  the DP table is a *hash map keyed by cell*, the low-resolution path
  is dilated as a *set of tuples* before being projected up.  Per-cell
  constants are several times those of a tight banded loop.

The paper's headline Fig. 1 measurement ("the approximate FastDTW is
much slower than the exact cDTW, both implemented in the same
language") is a statement about implementations users can actually
have.  Published FastDTW code pays hash-map and set overhead per cell
because its window is irregular; banded cDTW's window is two integers
per row.  The benchmarks therefore run *this* variant wherever the
paper timed FastDTW, and ``benchmarks/ablations`` quantifies the gap
to the optimised variant.
"""

from __future__ import annotations

from math import inf
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import trace as _obs
from .cost import CostLike, cost_name, resolve_cost
from .fastdtw import FastDtwResult
from .path import WarpingPath
from .validate import validate_pair

Cell = Tuple[int, int]


def fastdtw_reference(
    x: Sequence[float],
    y: Sequence[float],
    radius: int = 1,
    cost: CostLike = "squared",
) -> FastDtwResult:
    """FastDTW via the reference data-structure layout.

    Same algorithm and parameters as
    :func:`repro.core.fastdtw.fastdtw`; same result type.  Distances
    agree with the optimised variant up to window-construction
    differences (the reference dilates the coarse path *before*
    projection, ours after; both honour the radius semantics and both
    converge to exact DTW as the radius grows).
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    validate_pair(x, y)
    dist_fn = resolve_cost(cost)
    with _obs.span("fastdtw_reference"):
        distance, path, cells = _fastdtw_rec(
            [float(v) for v in x], [float(v) for v in y], radius, dist_fn
        )
    trace = _obs._ACTIVE
    if trace is not None:
        # the reference variant runs its own hash-map DP, so its cells
        # are reported at this boundary rather than per dp_over_window
        # call; "dp.cells == result cells" holds for this measure too
        trace.incr("dp.calls")
        trace.incr("dp.cells", cells)
    return FastDtwResult(
        distance=distance,
        path=WarpingPath(path),
        cells=cells,
        cost=cost_name(cost),
        radius=radius,
    )


def _fastdtw_rec(x, y, radius, dist_fn):
    min_size = radius + 2
    if len(x) <= min_size or len(y) <= min_size:
        return _dtw_over_cells(x, y, None, dist_fn)

    shrunk_x = _reduce_by_half(x)
    shrunk_y = _reduce_by_half(y)
    _d, low_path, low_cells = _fastdtw_rec(shrunk_x, shrunk_y, radius,
                                           dist_fn)
    window = _expanded_window(low_path, len(x), len(y), radius)
    d, path, cells = _dtw_over_cells(x, y, window, dist_fn)
    return d, path, cells + low_cells


def _reduce_by_half(x: List[float]) -> List[float]:
    return [
        (x[i] + x[i + 1]) / 2 for i in range(0, len(x) - len(x) % 2, 2)
    ]


def _expanded_window(
    path: List[Cell], len_x: int, len_y: int, radius: int,
) -> List[Cell]:
    """Dilate the coarse path by ``radius``, project up, rasterise.

    Mirrors the reference implementation: a set of tuples for the
    dilated path, a second set for the projected cells, then a scan
    producing the cell list in lattice order.
    """
    path_set = set(path)
    for i, j in path:
        for a in range(-radius, radius + 1):
            for b in range(-radius, radius + 1):
                path_set.add((i + a, j + b))

    window_set = set()
    for i, j in path_set:
        window_set.add((i * 2, j * 2))
        window_set.add((i * 2, j * 2 + 1))
        window_set.add((i * 2 + 1, j * 2))
        window_set.add((i * 2 + 1, j * 2 + 1))

    # Rasterise to lattice order.  Odd-length levels can leave the last
    # row/column uncovered (a quirk the reference code inherits from
    # halving dropping the dangling sample); route through the
    # feasibility-repairing Window to guarantee a connected region,
    # then back to the explicit cell list the reference DP consumes.
    from .window import Window

    win = Window.from_cells(len_x, len_y, window_set)
    return list(win.cells())


def _dtw_over_cells(
    x: List[float],
    y: List[float],
    window: Optional[List[Cell]],
    dist_fn,
) -> Tuple[float, List[Cell], int]:
    """DP over an explicit cell list with a hash-map cost table.

    The reference layout: ``D[(i, j)] = (cost, prev_i, prev_j)`` in a
    dict with 1-based keys, iterated over the window cell list.
    """
    len_x, len_y = len(x), len(y)
    if window is None:
        window = [(i, j) for i in range(len_x) for j in range(len_y)]
    shifted = [(i + 1, j + 1) for i, j in window]

    # the reference layout, faithfully: a defaultdict of
    # (cost, prev_i, prev_j) tuples and a keyed min() over the three
    # predecessor candidates -- this per-cell constant is what every
    # user of the published implementation paid
    from collections import defaultdict

    D: Dict[Cell, tuple] = defaultdict(lambda: (inf,))
    D[0, 0] = (0.0, 0, 0)
    cells = 0
    for i, j in shifted:
        dt = dist_fn(x[i - 1], y[j - 1])
        D[i, j] = min(
            (D[i - 1, j][0] + dt, i - 1, j),
            (D[i, j - 1][0] + dt, i, j - 1),
            (D[i - 1, j - 1][0] + dt, i - 1, j - 1),
            key=lambda a: a[0],
        )
        cells += 1

    end = D[len_x, len_y]
    if end[0] == inf:
        raise RuntimeError("window disconnected the DTW lattice")

    path: List[Cell] = []
    i, j = len_x, len_y
    while (i, j) != (0, 0):
        path.append((i - 1, j - 1))
        _cost, i, j = D[i, j]
    path.reverse()
    return end[0], path, cells
