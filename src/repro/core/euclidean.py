"""Euclidean distance: the ``w = 0`` degenerate case of cDTW.

The paper's Section 2 notes that ``cDTW_0`` *is* the Euclidean
distance.  This module provides it directly (O(n), no lattice), with
optional early abandoning, which :mod:`repro.search` uses as the
cheapest member of its cascade.
"""

from __future__ import annotations

from math import inf, sqrt
from typing import Optional, Sequence

from .cost import CostLike, resolve_cost


def euclidean(
    x: Sequence[float],
    y: Sequence[float],
    cost: CostLike = "squared",
    abandon_above: Optional[float] = None,
) -> float:
    """Lock-step distance ``sum(cost(x[i], y[i]))``.

    Parameters
    ----------
    x, y:
        Equal-length, non-empty series.
    cost:
        Local cost (default ``"squared"``, giving the squared Euclidean
        distance; take :func:`math.sqrt` for the L2 norm).
    abandon_above:
        If the running sum exceeds this threshold, return ``inf``
        immediately (early abandoning).

    Raises
    ------
    ValueError
        If the series are empty or of different lengths.
    """
    if len(x) != len(y):
        raise ValueError(
            f"euclidean distance needs equal lengths, got {len(x)} and {len(y)}"
        )
    if not len(x):
        raise ValueError("cannot compare empty series")
    if isinstance(x[0], (tuple, list)) or isinstance(y[0], (tuple, list)):
        raise ValueError(
            "euclidean() is a univariate measure but the input is "
            "multivariate (shaped (length, dims)); use cdtw_d with "
            "band=0 or sum per-channel euclidean distances instead"
        )
    if cost == "squared":
        total = 0.0
        if abandon_above is None:
            for a, b in zip(x, y):
                d = a - b
                total += d * d
            return total
        for a, b in zip(x, y):
            d = a - b
            total += d * d
            if total > abandon_above:
                return inf
        return total
    fn = resolve_cost(cost)
    total = 0.0
    for a, b in zip(x, y):
        total += fn(a, b)
        if abandon_above is not None and total > abandon_above:
            return inf
    return total


def euclidean_l2(x: Sequence[float], y: Sequence[float]) -> float:
    """The familiar L2 norm ``sqrt(sum((x - y) ** 2))``."""
    return sqrt(euclidean(x, y, cost="squared"))
