"""Warping windows: the lattice subsets a constrained DTW may explore.

A *window* over an ``n x m`` DTW lattice is, for each row ``i``, an
inclusive column range ``(lo_i, hi_i)``.  Per-row ranges are the
representation both of the classic Sakoe-Chiba band used by cDTW and of
the irregular region FastDTW builds by projecting a coarse warping path
up one resolution level and dilating it by its radius ``r``.

Storing ranges (rather than a cell set) makes the windowed DP loop a
contiguous scan per row and makes the window's cell count -- the
hardware-independent cost model used throughout the benchmarks --
an O(n) sum.

Windows constructed here are always *feasible*: the ranges are
monotonically non-decreasing in both endpoints and consecutive rows
overlap diagonally, so at least one valid warping path exists inside
every window.  :meth:`Window.from_cells` enforces this by widening
degenerate input regions, mirroring what reference FastDTW
implementations do implicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

Range = Tuple[int, int]
Cell = Tuple[int, int]


@dataclass(frozen=True)
class Window:
    """Per-row column ranges of an ``n x m`` DTW lattice subset.

    Use the constructors :meth:`full`, :meth:`band` and
    :meth:`from_cells` rather than building ranges by hand.
    """

    n: int
    m: int
    ranges: Tuple[Range, ...]

    def __post_init__(self) -> None:
        if self.n < 1 or self.m < 1:
            raise ValueError("window dimensions must be positive")
        if len(self.ranges) != self.n:
            raise ValueError(
                f"expected {self.n} row ranges, got {len(self.ranges)}"
            )
        prev_lo = prev_hi = 0
        for i, (lo, hi) in enumerate(self.ranges):
            if not (0 <= lo <= hi < self.m):
                raise ValueError(f"row {i}: invalid range ({lo}, {hi})")
            if i == 0:
                if lo != 0:
                    raise ValueError("row 0 must include column 0")
            else:
                if lo < prev_lo or hi < prev_hi:
                    raise ValueError(f"row {i}: ranges must be monotone")
                if lo > prev_hi + 1:
                    raise ValueError(
                        f"row {i}: range ({lo}, {hi}) unreachable from "
                        f"previous row range ({prev_lo}, {prev_hi})"
                    )
            prev_lo, prev_hi = lo, hi
        if self.ranges[0][0] != 0 or self.ranges[-1][1] != self.m - 1:
            raise ValueError("window must include (0, 0) and (n-1, m-1)")

    # -- constructors ----------------------------------------------------

    @classmethod
    def full(cls, n: int, m: int) -> "Window":
        """The unconstrained window covering the entire lattice."""
        return cls(n, m, tuple((0, m - 1) for _ in range(n)))

    @classmethod
    def band(cls, n: int, m: int, band: int) -> "Window":
        """Sakoe-Chiba band of half-width ``band`` cells.

        For equal lengths this is the classic ``|i - j| <= band``
        constraint.  For unequal lengths the band is slope-corrected:
        it is centred on the straight line from ``(0, 0)`` to
        ``(n-1, m-1)`` and additionally widened just enough to remain
        feasible (a band narrower than the length difference would
        admit no complete path).

        A ``band`` of zero with ``n == m`` degenerates to the diagonal:
        cDTW with ``band=0`` *is* the Euclidean distance (Section 2 of
        the paper).
        """
        if band < 0:
            raise ValueError("band must be non-negative")
        slope = (m - 1) / (n - 1) if n > 1 else 0.0
        ranges: List[Range] = []
        for i in range(n):
            centre = i * slope
            lo = max(0, math.ceil(centre - band))
            hi = min(m - 1, math.floor(centre + band))
            if hi < lo:  # slope rounding produced an empty row; pin to centre
                lo = hi = min(m - 1, max(0, round(centre)))
            ranges.append((lo, hi))
        return cls(n, m, _make_feasible(n, m, ranges))

    @classmethod
    def itakura(cls, n: int, m: int, max_slope: float = 2.0) -> "Window":
        """Itakura parallelogram: the classic slope constraint.

        The other time-honoured alternative to the Sakoe-Chiba band:
        the warping path's local slope is bounded by ``max_slope``
        (and its reciprocal), which pinches the window to the corners
        and lets it bulge mid-series.  Provided for completeness of
        the constrained-DTW family; use with
        :func:`repro.core.dtw.windowed_dtw`.

        Parameters
        ----------
        max_slope:
            Maximum allowed local slope, ``>= 1``.  ``1`` degenerates
            towards the diagonal; larger values admit more warping.
        """
        if max_slope < 1.0:
            raise ValueError("max_slope must be at least 1")
        s = float(max_slope)
        ranges: List[Range] = []
        last_i, last_j = n - 1, m - 1
        for i in range(n):
            # forward cone from (0, 0) and backward cone from the end
            lo = max(
                math.ceil(i / s),
                last_j - math.floor(s * (last_i - i)),
            )
            hi = min(
                math.floor(s * i),
                last_j - math.ceil((last_i - i) / s),
            )
            if i == 0:
                lo, hi = 0, max(0, hi)
            if i == last_i:
                hi = last_j
                lo = min(lo, last_j)
            if hi < lo:  # degenerate mid-row: pin to the diagonal line
                centre = round(i * (m - 1) / (n - 1)) if n > 1 else 0
                lo = hi = min(m - 1, max(0, centre))
            ranges.append((max(0, lo), min(m - 1, hi)))
        return cls(n, m, _make_feasible(n, m, ranges))

    @classmethod
    def from_fraction(cls, n: int, m: int, window: float) -> "Window":
        """Band from the paper's percentage convention.

        ``window`` is a fraction of the series length (``0.1`` is the
        paper's "w = 10%"); the absolute half-width is
        ``ceil(window * max(n, m))``.
        """
        if not 0.0 <= window <= 1.0:
            raise ValueError("window fraction must be in [0, 1]")
        return cls.band(n, m, math.ceil(window * max(n, m)))

    @classmethod
    def from_cells(cls, n: int, m: int, cells: Iterable[Cell]) -> "Window":
        """Smallest feasible window containing ``cells``.

        This is FastDTW's window-construction primitive: the cells are
        a projected-and-dilated coarse path; rows the projection missed
        (odd-length boundaries) are filled by interpolation, and the
        result is widened minimally until a valid path can traverse it.
        """
        lo = [m] * n
        hi = [-1] * n
        for i, j in cells:
            if 0 <= i < n and 0 <= j < m:
                if j < lo[i]:
                    lo[i] = j
                if j > hi[i]:
                    hi[i] = j
        ranges: List[Range] = []
        for i in range(n):
            if hi[i] < 0:  # row not covered: inherit from neighbours later
                ranges.append((m, -1))
            else:
                ranges.append((lo[i], hi[i]))
        _fill_missing_rows(ranges, m)
        return cls(n, m, _make_feasible(n, m, ranges))

    @classmethod
    def expand_path(cls, path, n: int, m: int, radius: int) -> "Window":
        """FastDTW's ``ExpandedResWindow``: project ``path`` (a coarse
        :class:`~repro.core.path.WarpingPath`) up to an ``n x m``
        lattice and dilate it by ``radius`` cells in every direction.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        projected = path.project_up(n, m)
        if radius == 0:
            return cls.from_cells(n, m, projected)
        # dilate by expanding each projected cell's row range, then
        # smearing ranges +-radius rows vertically.
        lo = [m] * n
        hi = [-1] * n
        for i, j in projected:
            jl = max(0, j - radius)
            jh = min(m - 1, j + radius)
            if jl < lo[i]:
                lo[i] = jl
            if jh > hi[i]:
                hi[i] = jh
        smeared_lo = list(lo)
        smeared_hi = list(hi)
        for i in range(n):
            if hi[i] < 0:
                continue
            for di in range(-radius, radius + 1):
                ii = i + di
                if 0 <= ii < n:
                    if lo[i] < smeared_lo[ii]:
                        smeared_lo[ii] = lo[i]
                    if hi[i] > smeared_hi[ii]:
                        smeared_hi[ii] = hi[i]
        ranges = [(smeared_lo[i], smeared_hi[i]) for i in range(n)]
        _fill_missing_rows(ranges, m)
        return cls(n, m, _make_feasible(n, m, ranges))

    # -- queries -----------------------------------------------------------

    def row(self, i: int) -> Range:
        """Inclusive column range of row ``i``."""
        return self.ranges[i]

    def contains(self, i: int, j: int) -> bool:
        """Whether lattice cell ``(i, j)`` is inside the window."""
        if not (0 <= i < self.n and 0 <= j < self.m):
            return False
        lo, hi = self.ranges[i]
        return lo <= j <= hi

    def cell_count(self) -> int:
        """Number of lattice cells the window admits.

        This is the paper's hardware-independent cost model: a DP over
        this window performs exactly this many cell evaluations.
        """
        return sum(hi - lo + 1 for lo, hi in self.ranges)

    def coverage(self) -> float:
        """Fraction of the full lattice this window covers."""
        return self.cell_count() / (self.n * self.m)

    def union(self, other: "Window") -> "Window":
        """Smallest feasible window containing both operands."""
        if (self.n, self.m) != (other.n, other.m):
            raise ValueError("windows must share lattice dimensions")
        ranges = [
            (min(a_lo, b_lo), max(a_hi, b_hi))
            for (a_lo, a_hi), (b_lo, b_hi) in zip(self.ranges, other.ranges)
        ]
        return Window(self.n, self.m, _make_feasible(self.n, self.m, ranges))

    def cells(self) -> Iterator[Cell]:
        """Iterate all admitted cells in lattice order."""
        for i, (lo, hi) in enumerate(self.ranges):
            for j in range(lo, hi + 1):
                yield (i, j)

    def __contains__(self, cell: Cell) -> bool:
        return self.contains(*cell)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Window({self.n}x{self.m}, cells={self.cell_count()}, "
            f"coverage={self.coverage():.3f})"
        )


def _fill_missing_rows(ranges: List[Range], m: int) -> None:
    """Replace sentinel ``(m, -1)`` rows with neighbour interpolation."""
    n = len(ranges)
    last_known = None
    for i in range(n):
        if ranges[i][1] >= 0:
            if last_known is not None and last_known < i - 1:
                lo_a, hi_a = ranges[last_known]
                lo_b, hi_b = ranges[i]
                for k in range(last_known + 1, i):
                    ranges[k] = (min(lo_a, lo_b), max(hi_a, hi_b))
            elif last_known is None and i > 0:
                for k in range(i):
                    ranges[k] = (0, ranges[i][1])
            last_known = i
    if last_known is None:
        for k in range(n):
            ranges[k] = (0, m - 1)
    elif last_known < n - 1:
        lo_a, hi_a = ranges[last_known]
        for k in range(last_known + 1, n):
            ranges[k] = (lo_a, m - 1)


def _make_feasible(n: int, m: int, ranges: Sequence[Range]) -> Tuple[Range, ...]:
    """Minimally widen ranges so a valid warping path exists.

    Enforces, in order: corner inclusion, monotone non-decreasing
    endpoints (forward pass on ``hi``, backward pass on ``lo``), and
    diagonal reachability between consecutive rows (``lo_i <= hi_{i-1} + 1``).
    """
    lo = [r[0] for r in ranges]
    hi = [r[1] for r in ranges]
    # corners
    lo[0] = 0
    hi[-1] = m - 1
    if hi[0] < 0:
        hi[0] = 0
    if lo[-1] > m - 1:
        lo[-1] = m - 1
    # clip
    for i in range(n):
        lo[i] = max(0, min(lo[i], m - 1))
        hi[i] = max(0, min(hi[i], m - 1))
        if hi[i] < lo[i]:
            hi[i] = lo[i]
    # hi must be non-decreasing going down
    for i in range(1, n):
        if hi[i] < hi[i - 1]:
            hi[i] = hi[i - 1]
    # lo must be non-decreasing going down: fix by lowering earlier rows
    for i in range(n - 2, -1, -1):
        if lo[i] > lo[i + 1]:
            lo[i] = lo[i + 1]
    # diagonal reachability: row i must start no later than hi[i-1] + 1
    for i in range(1, n):
        if lo[i] > hi[i - 1] + 1:
            # widen previous row upward to meet this row
            hi[i - 1] = lo[i] - 1
            # hi just changed; re-enforce monotone hi backwards is not
            # needed (we only increased it), but earlier rows may now be
            # disconnected from the enlarged one -- handled since we only
            # ever *grow* hi moving forward.
        if lo[i] > lo[i - 1] and lo[i] > hi[i - 1] + 1:
            lo[i] = hi[i - 1] + 1
    # final sanity clip
    for i in range(n):
        if hi[i] < lo[i]:
            hi[i] = lo[i]
    return tuple(zip(lo, hi))
