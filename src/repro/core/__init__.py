"""DTW core: exact full/constrained DTW and the FastDTW approximation.

This package is the subject of the paper: both contenders --
exact constrained DTW (:func:`cdtw`) and the approximate
:func:`fastdtw` -- implemented from scratch over one shared
dynamic-programming engine, so every timing comparison is
like-for-like.
"""

from .cost import BUILTIN_COSTS, absolute_cost, resolve_cost, squared_cost
from .cdtw import band_cells, cdtw
from .downsample_dtw import DownsampledDtwResult, downsampled_dtw
from .dtw import dtw, windowed_dtw
from .engine import DtwResult, dp_over_window
from .error import approximation_error, approximation_error_percent
from .euclidean import euclidean, euclidean_l2
from .fastdtw import (
    FastDtwLevel,
    FastDtwResult,
    fastdtw,
    fastdtw_cell_estimate,
)
from .fastdtw_reference import fastdtw_reference
from .kernels import (
    KernelSet,
    available_backends,
    default_backend,
    get_kernels,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from .matrix import DistanceMatrix, distance_matrix
from .measures import (
    CELL_COUNTED_MEASURES,
    MEASURES,
    RLE_MEASURES,
    measure_fn,
    pair_cost_model,
    split_result,
    validate_measure,
)
from .multivariate import (
    cdtw_nd,
    dtw_nd,
    fastdtw_nd,
    halve_nd,
    interleave,
    magnitude,
    vector_abs_cost,
    vector_squared_cost,
)
from .numpy_backend import dtw_numpy, pairwise_matrix_numpy
from .validate import validate_pair, validate_series
from .paa import halve, paa, paa_factor
from .path import InvalidPathError, WarpingPath, diagonal_path
from .rle import RleSeries, as_rle, rle_cdtw, rle_dtw
from .window import Window

__all__ = [
    "BUILTIN_COSTS",
    "CELL_COUNTED_MEASURES",
    "DistanceMatrix",
    "MEASURES",
    "DownsampledDtwResult",
    "DtwResult",
    "FastDtwLevel",
    "FastDtwResult",
    "InvalidPathError",
    "KernelSet",
    "RLE_MEASURES",
    "RleSeries",
    "WarpingPath",
    "Window",
    "absolute_cost",
    "approximation_error",
    "approximation_error_percent",
    "as_rle",
    "available_backends",
    "band_cells",
    "cdtw",
    "cdtw_nd",
    "default_backend",
    "diagonal_path",
    "distance_matrix",
    "downsampled_dtw",
    "dp_over_window",
    "dtw",
    "dtw_nd",
    "dtw_numpy",
    "euclidean",
    "euclidean_l2",
    "fastdtw",
    "fastdtw_cell_estimate",
    "fastdtw_nd",
    "fastdtw_reference",
    "get_kernels",
    "halve",
    "halve_nd",
    "interleave",
    "magnitude",
    "measure_fn",
    "paa",
    "paa_factor",
    "pair_cost_model",
    "pairwise_matrix_numpy",
    "resolve_backend",
    "rle_cdtw",
    "rle_dtw",
    "resolve_cost",
    "set_default_backend",
    "split_result",
    "squared_cost",
    "use_backend",
    "validate_measure",
    "validate_pair",
    "validate_series",
    "vector_abs_cost",
    "vector_squared_cost",
    "windowed_dtw",
]
