"""Naive reference implementations for cross-checking the engine.

These are the textbook O(n*m)-memory formulations, written for
obviousness rather than speed.  The test-suite validates every
optimised routine in :mod:`repro.core` against them on small inputs
(including via Hypothesis-generated series), so a bug would have to be
present in two independently written implementations to go unnoticed.
"""

from __future__ import annotations

from math import inf
from typing import List, Optional, Sequence, Tuple

from .cost import CostLike, resolve_cost


def naive_full_matrix(
    x: Sequence[float],
    y: Sequence[float],
    cost: CostLike = "squared",
    band: Optional[int] = None,
) -> List[List[float]]:
    """The full accumulated-cost matrix ``D`` of the DTW recurrence.

    ``band``, if given, applies the classic (slope-corrected)
    Sakoe-Chiba constraint by leaving excluded cells at ``inf``.
    """
    n, m = len(x), len(y)
    if n == 0 or m == 0:
        raise ValueError("cannot warp empty series")
    fn = resolve_cost(cost)
    slope = (m - 1) / (n - 1) if n > 1 else 0.0

    def allowed(i: int, j: int) -> bool:
        if band is None:
            return True
        return abs(j - i * slope) <= band + 1e-9

    D = [[inf] * m for _ in range(n)]
    for i in range(n):
        for j in range(m):
            if not allowed(i, j):
                continue
            local = fn(x[i], y[j])
            if i == 0 and j == 0:
                D[i][j] = local
            elif i == 0:
                D[i][j] = local + D[i][j - 1]
            elif j == 0:
                D[i][j] = local + D[i - 1][j]
            else:
                D[i][j] = local + min(
                    D[i - 1][j - 1], D[i - 1][j], D[i][j - 1]
                )
    return D


def naive_dtw(
    x: Sequence[float],
    y: Sequence[float],
    cost: CostLike = "squared",
    band: Optional[int] = None,
) -> float:
    """Naive DTW distance (optionally banded).

    Note the band here follows the *mathematical* constraint
    ``|j - i * slope| <= band``; the engine's
    :meth:`~repro.core.window.Window.band` additionally widens
    infeasible bands, so comparisons in tests use feasible settings.
    """
    D = naive_full_matrix(x, y, cost=cost, band=band)
    return D[-1][-1]


def naive_path(
    x: Sequence[float],
    y: Sequence[float],
    cost: CostLike = "squared",
) -> Tuple[float, List[Tuple[int, int]]]:
    """Naive full-DTW distance plus an optimal path (diagonal-preferring)."""
    D = naive_full_matrix(x, y, cost=cost)
    i, j = len(x) - 1, len(y) - 1
    cells = [(i, j)]
    while i > 0 or j > 0:
        if i == 0:
            j -= 1
        elif j == 0:
            i -= 1
        else:
            diag, vert, horz = D[i - 1][j - 1], D[i - 1][j], D[i][j - 1]
            best = min(diag, vert, horz)
            if diag == best:
                i, j = i - 1, j - 1
            elif vert == best:
                i -= 1
            else:
                j -= 1
        cells.append((i, j))
    cells.reverse()
    return D[-1][-1], cells
