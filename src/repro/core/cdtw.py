"""Constrained DTW (cDTW): the algorithm the paper recommends.

cDTW restricts the warping path to a Sakoe-Chiba band of half-width
``w`` around the lattice diagonal.  Following the paper (Section 2):

* ``w`` is stated as a *fraction of the series length* at this API
  (``window=0.1`` is the paper's "w = 10%"); pass ``band=`` for an
  absolute half-width in cells.
* ``cdtw(..., window=0)`` is the Euclidean distance;
  ``cdtw(..., window=1)`` is Full DTW.
* The band's true purpose is *accuracy* (it forbids pathological
  warpings); the O(n*w) speed is "a happy side effect".

Unequal-length series are supported via a slope-corrected band.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .cost import CostLike
from .engine import DtwResult, dp_over_window
from .validate import ensure_univariate_pair, validate_pair
from .window import Window


def cdtw(
    x: Sequence[float],
    y: Sequence[float],
    window: Optional[float] = None,
    band: Optional[int] = None,
    cost: CostLike = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
) -> DtwResult:
    """Exact DTW constrained to a Sakoe-Chiba band.

    Exactly one of ``window`` (fraction of length, the paper's
    percentage convention) and ``band`` (absolute cells) must be given.

    Parameters
    ----------
    x, y:
        Non-empty 1-D series.
    window:
        Band half-width as a fraction of ``max(len(x), len(y))`` in
        ``[0, 1]``.  ``0`` degenerates to Euclidean, ``1`` to Full DTW.
    band:
        Band half-width in cells (``>= 0``).
    cost, return_path, abandon_above:
        As in :func:`repro.core.dtw.dtw`.

    Returns
    -------
    DtwResult

    Examples
    --------
    >>> x = [0.0, 1.0, 2.0, 1.0]
    >>> cdtw(x, x, window=0.0).distance
    0.0
    >>> cdtw([0, 0, 1], [0, 1, 1], band=1).distance
    0.0
    """
    if (window is None) == (band is None):
        raise ValueError("specify exactly one of window= or band=")
    validate_pair(x, y)
    ensure_univariate_pair(x, y, "cdtw()")
    n, m = len(x), len(y)
    if window is not None:
        win = Window.from_fraction(n, m, window)
    else:
        win = Window.band(n, m, band)
    return dp_over_window(
        x, y, win, cost=cost, return_path=return_path,
        abandon_above=abandon_above,
    )


def band_cells(n: int, m: int, window: Optional[float] = None,
               band: Optional[int] = None) -> int:
    """Lattice cells a cDTW call with these parameters will evaluate.

    Useful for the benchmarks' analytic cost model without running the
    DP (``~ N * (2*w*N + 1)`` for equal lengths).
    """
    if (window is None) == (band is None):
        raise ValueError("specify exactly one of window= or band=")
    if window is not None:
        return Window.from_fraction(n, m, window).cell_count()
    return Window.band(n, m, band).cell_count()
