"""Input validation shared by the public distance entry points.

Distances over NaN or infinite samples silently poison every downstream
structure (searches return arbitrary neighbours, dendrograms collapse),
so the public API rejects non-finite input up front with a pointed
error instead of propagating NaNs through thousands of DP cells.
Validation is O(n) against the DP's O(n*w) and is skipped by internal
recursion (FastDTW validates once at the boundary, not per level).
"""

from __future__ import annotations

from math import isfinite
from typing import Sequence


def validate_series(x: Sequence[float], name: str = "series") -> None:
    """Reject empty series and non-finite samples.

    Raises
    ------
    ValueError
        With the offending index, e.g.
        ``"series y: sample 3 is not finite (nan)"``.
    """
    if len(x) == 0:
        raise ValueError(f"{name} is empty")
    for i, v in enumerate(x):
        if isinstance(v, (tuple, list)):  # multivariate sample
            for k, c in enumerate(v):
                if not isfinite(c):
                    raise ValueError(
                        f"{name}: sample {i} component {k} is not "
                        f"finite ({c!r})"
                    )
        elif not isfinite(v):
            raise ValueError(
                f"{name}: sample {i} is not finite ({v!r})"
            )


def validate_pair(
    x: Sequence[float], y: Sequence[float],
) -> None:
    """Validate both operands of a distance computation."""
    validate_series(x, "series x")
    validate_series(y, "series y")
