"""Input validation shared by the public distance entry points.

Distances over NaN or infinite samples silently poison every downstream
structure (searches return arbitrary neighbours, dendrograms collapse),
so the public API rejects non-finite input up front with a pointed
error instead of propagating NaNs through thousands of DP cells.
Validation is O(n) against the DP's O(n*w) and is skipped by internal
recursion (FastDTW validates once at the boundary, not per level).

The contract is dims-aware: a series is either **univariate** (scalar
samples) or **multivariate** (every sample a same-length vector --
shape ``(length, dims)``).  :func:`series_dims` classifies a series
under that contract, :func:`validate_series` enforces it per series
(mixed scalar/vector samples and ragged sample widths are rejected,
not just non-finite values), and :func:`validate_pair` additionally
refuses to compare series of different dimensionality.
"""

from __future__ import annotations

from math import isfinite
from typing import Optional, Sequence


def series_dims(
    x: Sequence[float], name: str = "series"
) -> Optional[int]:
    """The series' sample dimensionality under the dims contract.

    Returns ``None`` for a univariate series (scalar samples) and
    ``dims >= 1`` for a multivariate one (every sample a length-
    ``dims`` vector).  Only the *shape* is checked here; finiteness is
    :func:`validate_series`'s job.

    Raises
    ------
    ValueError
        Empty series, zero-length samples, ragged sample widths, or a
        mix of scalar and vector samples -- each named explicitly, so
        a flat series handed to a multivariate consumer (or vice
        versa) fails with the expected ``(length, dims)`` shape in the
        message instead of an opaque ``TypeError``.
    """
    if len(x) == 0:
        raise ValueError(f"{name} is empty")
    first_vector = isinstance(x[0], (tuple, list))
    dims = len(x[0]) if first_vector else None
    if first_vector and dims == 0:
        raise ValueError(
            f"{name}: sample 0 is zero-dimensional; multivariate "
            "series must be shaped (length, dims) with dims >= 1"
        )
    for i, v in enumerate(x):
        if isinstance(v, (tuple, list)) != first_vector:
            raise ValueError(
                f"{name}: sample {i} is "
                f"{'a vector' if not first_vector else 'a scalar'} but "
                f"sample 0 is {'a vector' if first_vector else 'a scalar'}; "
                "a series must be all-scalar (univariate) or shaped "
                "(length, dims) with equal-length sample vectors"
            )
        if first_vector and len(v) != dims:
            raise ValueError(
                f"{name}: inconsistent dimensionality (sample {i} has "
                f"{len(v)} components but sample 0 has {dims}); "
                "multivariate series must be shaped (length, dims)"
            )
    return dims


def validate_series(x: Sequence[float], name: str = "series") -> None:
    """Reject empty series, shape violations and non-finite samples.

    Raises
    ------
    ValueError
        With the offending index, e.g.
        ``"series y: sample 3 is not finite (nan)"``.
    """
    series_dims(x, name)
    for i, v in enumerate(x):
        if isinstance(v, (tuple, list)):  # multivariate sample
            for k, c in enumerate(v):
                if not isfinite(c):
                    raise ValueError(
                        f"{name}: sample {i} component {k} is not "
                        f"finite ({c!r})"
                    )
        elif not isfinite(v):
            raise ValueError(
                f"{name}: sample {i} is not finite ({v!r})"
            )


def ensure_univariate_pair(
    x: Sequence[float], y: Sequence[float], where: str,
) -> None:
    """Refuse multivariate input to a scalar-only measure.

    The scalar measures' DP loops subtract samples directly, so a
    vector sample would die in arithmetic; this names the fix instead.
    """
    if (
        series_dims(x, "series x") is not None
        or series_dims(y, "series y") is not None
    ):
        raise ValueError(
            f"{where} is a univariate measure but the input is "
            "multivariate (shaped (length, dims)); use the "
            "multivariate measures instead (dtw_d/dtw_i for full DTW, "
            "cdtw_d/cdtw_i for banded)"
        )


def validate_pair(
    x: Sequence[float], y: Sequence[float],
) -> None:
    """Validate both operands of a distance computation.

    Beyond the per-series checks, the two series must agree on
    dimensionality: comparing a univariate series against a
    multivariate one (or 3-axis against 2-axis) is always a caller
    bug, caught here rather than deep in a DP loop.
    """
    validate_series(x, "series x")
    validate_series(y, "series y")
    dx = series_dims(x, "series x")
    dy = series_dims(y, "series y")
    if dx != dy:
        fmt = lambda d: "univariate" if d is None else f"{d}-dimensional"
        raise ValueError(
            f"dimensionality mismatch: series x is {fmt(dx)} but "
            f"series y is {fmt(dy)}"
        )
