"""NumPy-vectorised DTW and lower-bound kernels.

The paper's head-to-head timings intentionally use the pure-Python
engine for *both* algorithms ("implemented in the same language,
running on the same hardware") -- :mod:`repro.timing` is pinned to it.
Everything *around* the head-to-head, however, is a repeated-use
workload (classification, clustering, similarity search), and there
the ROADMAP's goal is "as fast as the hardware allows".  This module
is the NumPy side of the :mod:`repro.core.kernels` registry: a
feature-parity drop-in for :func:`repro.core.engine.dp_over_window`
plus batched envelope/LB kernels for pruning cascades.

Parity is *bit-level*, not approximate: :func:`dtw_numpy` returns the
very same ``DtwResult`` fields -- distance, ``cells``, recovered path
(identical diagonal-first tie-breaking) and abandon decisions -- that
the pure engine produces, down to the last ulp.  The test-suite
(``tests/core/test_numpy_parity.py``) fuzzes that contract.

How the DP is vectorised while staying bit-identical
----------------------------------------------------

The DP's cell values are *evaluation-order independent*: each equals
``local + min(three predecessor values)``, where the predecessors'
final values do not depend on the order cells were filled in.  Any
schedule that finishes a cell's predecessors first therefore produces
bitwise the same lattice (IEEE-754 ``+`` is commutative and ``min`` is
a true minimum, so the combining arithmetic is operand-identical).

* The fast path sweeps **anti-diagonal wavefronts** (``i + j = d``):
  all three predecessors of a wavefront-``d`` cell sit on wavefronts
  ``d-1``/``d-2``, so each step is a handful of whole-front NumPy ops
  with no intra-step dependency at all.  Feasible windows make each
  wavefront a contiguous row interval, so fronts are plain slices.
* ``return_path`` and ``abandon_above`` need *row-major* order (rows
  are what gets retained and what abandon decisions are defined over),
  so those take a row sweep instead: diagonal/vertical predecessors
  vectorise directly, and the in-row horizontal recurrence
  ``cur[j] = min(acc[j], cur[j-1] + local[j])`` is solved by a
  verified prefix-minimum candidate (the recurrence's solution is
  unique, so a candidate that passes a vectorised exact-equality check
  against it *is* the sequential result) with an exact sequential
  fold for rows where verification fails.

``dtw_numpy_batch`` advances a whole stack of equal-shape pairs
through each wavefront together, which is where the large speedups
live: per-step NumPy dispatch overhead is amortised over the batch.
"""

from __future__ import annotations

from math import inf
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .cost import BUILTIN_COSTS, CostLike
from .engine import DtwResult, _backtrack
from .window import Window

__all__ = [
    "dtw_numpy",
    "dtw_numpy_batch",
    "dtw_chunk",
    "dtw_nd_numpy",
    "dtw_nd_chunk",
    "envelope_nd_chunk",
    "lb_keogh_nd_chunk",
    "pairwise_matrix_numpy",
    "envelope_numpy",
    "envelope_chunk",
    "lb_keogh_batch",
    "lb_keogh_chunk",
    "lb_keogh_reversed_batch",
    "lb_kim_batch",
    "suffix_gap_bounds_numpy",
]

_INF = np.inf

#: Pairs per internal block of the batched DP (bounds the local-cost
#: tensor to ~48 MB of float64 regardless of batch size).
_BLOCK_BUDGET_CELLS = 6_000_000


def _require_named_cost(cost: CostLike) -> str:
    """The cost name, or a pointed error for callables.

    The NumPy kernels inline the built-in costs into array expressions;
    arbitrary Python callables cannot be vectorised without silently
    falling back to scalar speed, so they are rejected here -- use
    ``backend="python"`` for custom costs.
    """
    if isinstance(cost, str) and cost in BUILTIN_COSTS:
        return cost
    raise ValueError(
        f"the numpy backend supports the named costs {BUILTIN_COSTS}; "
        f"got {cost!r} (use backend='python' for callable costs)"
    )


def _as_series(x, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D series")
    if not np.isfinite(arr).all():
        i = int(np.flatnonzero(~np.isfinite(arr))[0])
        raise ValueError(f"series {name}: sample {i} is not finite ({arr[i]!r})")
    return arr


def _resolve_window(n: int, m: int, window: Optional[Window],
                    band: Optional[int]) -> Window:
    if window is not None and band is not None:
        raise ValueError("pass either window= or band=, not both")
    if window is not None:
        return window
    if band is not None:
        return Window.band(n, m, band)
    return Window.full(n, m)


def _local_cost_matrix(x: np.ndarray, y: np.ndarray, ranges,
                       wmax: int, named: str) -> np.ndarray:
    """Rectangularised per-cell costs: ``L[i, k]`` is the cost of cell
    ``(i, lo_i + k)``; columns past a row's width hold junk (clamped to
    the last sample) and are never read by the DP."""
    n, m = len(x), len(y)
    lo = np.fromiter((r[0] for r in ranges), dtype=np.int64, count=n)
    cols = lo[:, None] + np.arange(wmax, dtype=np.int64)[None, :]
    np.minimum(cols, m - 1, out=cols)
    L = x[:, None] - y[cols]
    if named == "squared":
        np.multiply(L, L, out=L)
    else:
        np.abs(L, out=L)
    return L


def _antidiag_layout(window: Window):
    """Wavefront geometry of a window: for each anti-diagonal
    ``d = i + j``, the (contiguous, by feasibility) row interval
    ``[istart[d], iend[d]]`` of admitted cells, plus gather indices
    ``I``/``J`` mapping ``(d, k)`` to lattice coordinates
    ``(istart[d] + k, d - i)`` (junk columns clamped to the interval's
    last real cell)."""
    n, m = window.n, window.m
    lo = np.fromiter((r[0] for r in window.ranges), dtype=np.int64, count=n)
    hi = np.fromiter((r[1] for r in window.ranges), dtype=np.int64, count=n)
    rows = np.arange(n, dtype=np.int64)
    d = np.arange(n + m - 1, dtype=np.int64)
    # row i covers anti-diagonals [i + lo_i, i + hi_i]; both bounds are
    # non-decreasing in i, so membership intervals come from bisection
    istart = np.searchsorted(hi + rows, d, side="left")
    iend = np.searchsorted(lo + rows, d, side="right") - 1
    wdmax = int((iend - istart).max()) + 1
    I = istart[:, None] + np.arange(wdmax, dtype=np.int64)[None, :]
    np.minimum(I, iend[:, None], out=I)
    J = d[:, None] - I
    return istart, iend, I, J


def _dtw_antidiag(X: np.ndarray, Y: np.ndarray, window: Window,
                  named: str) -> np.ndarray:
    """Distances for a ``(p, n) x (p, m)`` pair stack by wavefront
    sweep; bit-identical to the pure engine (see the module docstring
    for the evaluation-order argument)."""
    p = X.shape[0]
    n, m = window.n, window.m
    istart, iend, I, J = _antidiag_layout(window)
    out = np.empty(p, dtype=np.float64)
    block = max(1, _BLOCK_BUDGET_CELLS // I.size)
    for start in range(0, p, block):
        sl = slice(start, min(start + block, p))
        out[sl] = _antidiag_block(X[sl], Y[sl], n, m, istart, iend, I, J,
                                  named)
    return out


def _antidiag_block(X, Y, n, m, istart, iend, I, J, named) -> np.ndarray:
    # skewed local costs: LS[t, d, k] is the cost of cell
    # (istart[d] + k, d - i) for pair t
    LS = X[:, I] - Y[:, J]
    if named == "squared":
        np.multiply(LS, LS, out=LS)
    else:
        np.abs(LS, out=LS)
    return _antidiag_sweep(LS, n, m, istart, iend)


def _antidiag_sweep(LS, n, m, istart, iend) -> np.ndarray:
    p = LS.shape[0]
    starts = istart.tolist()
    ends = iend.tolist()
    # three rotating wavefront buffers over absolute row indices with a
    # guard slot: buffer index i+1 holds the cell in row i; slots
    # outside a front's interval stay inf.
    b2 = np.full((p, n + 1), _INF)   # front d-2
    b1 = np.full((p, n + 1), _INF)   # front d-1
    b0 = np.full((p, n + 1), _INF)   # front d (reuses the d-3 buffer)
    b1[:, 1] = LS[:, 0, 0]           # cell (0, 0): local cost + 0
    written = [0, 0, 0]              # written interval starts per buffer
    minimum = np.minimum
    for d in range(1, n + m - 1):
        s = starts[d]
        e1 = ends[d] + 1
        old = written[0]
        if old < s:  # clear the margin the d-3 front exposes
            b0[:, old + 1:s + 1] = _INF
        written[0] = written[1]
        written[1] = written[2]
        written[2] = s
        cur = b0[:, s + 1:e1 + 1]
        # vertical (i-1, j) and horizontal (i, j-1) live on front d-1
        # at row offsets i-1 and i; diagonal (i-1, j-1) on front d-2
        minimum(b1[:, s:e1], b1[:, s + 1:e1 + 1], out=cur)
        minimum(cur, b2[:, s:e1], out=cur)
        cur += LS[:, d, :e1 - s]
        b2, b1, b0 = b1, b0, b2
    return b1[:, n].copy()


def _fold_row(acc: np.ndarray, local: np.ndarray) -> None:
    """Exact sequential horizontal pass, in place (the pure engine's
    inner scan, run over plain Python floats)."""
    a = acc.tolist()
    l = local.tolist()
    run = a[0]
    for k in range(1, len(a)):
        c = run + l[k]
        if c < a[k]:
            run = c
        else:
            run = a[k]
        a[k] = run
    acc[:] = a


def _relax_block(acc: np.ndarray, local: np.ndarray) -> None:
    """Resolve the horizontal dependency for a ``(p, w)`` block of DP
    rows, in place, bit-identically to the sequential recurrence
    ``row[j] = min(acc[j], row[j-1] + local[j])``.

    Strategy: detect rows with any horizontal improvement (most rows
    have none); for those, build a candidate via the reassociated
    prefix-minimum identity and accept it only if it verifies against
    the exact recurrence -- a verified candidate is provably *the*
    sequential solution.  Verification failures (ulp-level) take the
    sequential fold.
    """
    w = acc.shape[1]
    if w == 1:
        return
    stepped = acc[:, :-1] + local[:, 1:]
    improving = np.any(stepped < acc[:, 1:], axis=1)
    if not improving.any():
        return
    idx = np.flatnonzero(improving)
    A = acc[idx]            # original values, kept for verification
    Lr = local[idx]
    csum = np.cumsum(Lr, axis=1)
    cand = csum + np.minimum.accumulate(A - csum, axis=1)
    cand[:, 0] = A[:, 0]  # the recurrence's base case, exact by definition
    # exact-recurrence verification (uniqueness => candidate is exact)
    rhs = np.minimum(A[:, 1:], cand[:, :-1] + Lr[:, 1:])
    ok = np.all(cand[:, 1:] == rhs, axis=1)
    acc[idx[ok]] = cand[ok]
    for r in idx[~ok]:
        _fold_row(acc[r], local[r])


def _relax_row(acc: np.ndarray, local: np.ndarray) -> None:
    """Single-row horizontal pass (a ``(1, w)`` block)."""
    _relax_block(acc.reshape(1, -1), local.reshape(1, -1))


def dtw_numpy(
    x,
    y,
    window: Optional[Window] = None,
    band: Optional[int] = None,
    cost: CostLike = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
    suffix_bound: Optional[Sequence[float]] = None,
) -> DtwResult:
    """NumPy windowed DTW, bit-identical to :func:`dp_over_window`.

    Parameters mirror the pure engine: ``window`` is an explicit
    :class:`~repro.core.window.Window`, ``band`` a Sakoe-Chiba
    half-width in cells (slope-corrected via :meth:`Window.band`);
    neither means Full DTW.  ``cost`` must be a built-in cost name.
    ``return_path``, ``abandon_above`` and ``suffix_bound`` behave
    exactly as documented on :func:`repro.core.engine.dp_over_window`,
    including the ``cells`` accounting (abandoned rows count) and the
    diagonal-first backtracking tie-break.

    Raises
    ------
    ValueError
        On empty/non-finite input, dimension mismatch, a callable
        cost, or a window whose first row excludes column 0 (such a
        window has no valid path start; :class:`Window` instances
        cannot express it, but duck-typed windows from sparse FastDTW
        refinements could -- the old backend silently seeded the DP
        from ``(0, lo_0)`` instead).
    """
    named = _require_named_cost(cost)
    xa = _as_series(x, "x")
    ya = _as_series(y, "y")
    n, m = len(xa), len(ya)
    win = _resolve_window(n, m, window, band)
    if (n, m) != (win.n, win.m):
        raise ValueError(
            f"window is {win.n}x{win.m} but series are {n}x{m}"
        )
    ranges = win.ranges
    if ranges[0][0] != 0:
        raise ValueError(
            f"window row 0 starts at column {ranges[0][0]}, excluding "
            "the mandatory path start (0, 0)"
        )

    from .cost import cost_name
    if abandon_above is None and not return_path:
        # wavefront sweep: fully vectorised, no in-step dependency
        dist = _dtw_antidiag(xa[None, :], ya[None, :], win, named)
        cells = sum(hi - lo + 1 for lo, hi in ranges)
        return DtwResult(float(dist[0]), None, cells, cost_name(cost))

    wmax = max(hi - lo + 1 for lo, hi in ranges)
    L = _local_cost_matrix(xa, ya, ranges, wmax, named)
    abandoned, cells, rows, bufp = _row_sweep(
        L, ranges, m, return_path, abandon_above, suffix_bound
    )

    if abandoned:
        return DtwResult(inf, None, cells, cost_name(cost), abandoned=True)
    distance = float(bufp[m])
    path = _backtrack(rows, ranges) if return_path else None
    return DtwResult(distance, path, cells, cost_name(cost))


def _row_sweep(
    L: np.ndarray,
    ranges,
    m: int,
    return_path: bool,
    abandon_above: Optional[float],
    suffix_bound: Optional[Sequence[float]],
) -> Tuple[bool, int, List[np.ndarray], np.ndarray]:
    """The row-major DP over a rectangularised local-cost matrix.

    Shared by the scalar and multivariate row-sweep paths (only the
    local-cost computation differs between them).  Returns
    ``(abandoned, cells, rows, final_buf)``; on completion the final
    row's value for column ``m - 1`` sits at ``final_buf[m]`` (one
    guard slot on the left).
    """
    n = len(ranges)
    # Ping-pong row buffers over absolute columns, with one guard slot
    # on the left: buffer index j+1 holds column j, index 0 stays inf.
    bufp = np.full(m + 2, _INF)
    bufc = np.full(m + 2, _INF)

    cells = 0
    abandoned = False
    rows: List[np.ndarray] = []

    lo0, hi0 = ranges[0]
    w0 = hi0 - lo0 + 1
    acc = bufp[1:w0 + 1]
    np.cumsum(L[0, :w0], out=acc)
    cells += w0
    prev_write = (lo0, hi0)
    stale = (lo0, hi0)  # extent currently sitting in bufc

    if abandon_above is not None:
        floor = acc.min()
        if suffix_bound is not None:
            floor = floor + suffix_bound[0]
        if floor > abandon_above:
            abandoned = True
    if not abandoned:
        if return_path:
            rows.append(acc.copy())
        for i in range(1, n):
            lo, hi = ranges[i]
            w = hi - lo + 1
            cells += w
            # clear the left margin this row exposes over bufc's stale
            # contents (two rows old); the right side is overwritten.
            if stale[0] < lo:
                bufc[stale[0] + 1:lo + 1] = _INF
            acc = bufc[lo + 1:hi + 2]
            Lrow = L[i, :w]
            np.minimum(bufp[lo:hi + 1], bufp[lo + 1:hi + 2], out=acc)
            acc += Lrow
            _relax_row(acc, Lrow)
            if abandon_above is not None:
                floor = acc.min()
                if suffix_bound is not None:
                    floor = floor + suffix_bound[i]
                if floor > abandon_above:
                    abandoned = True
                    break
            if return_path:
                rows.append(acc.copy())
            stale = prev_write
            prev_write = (lo, hi)
            bufp, bufc = bufc, bufp
    return abandoned, cells, rows, bufp


def dtw_numpy_batch(
    xs,
    ys,
    window: Window,
    cost: CostLike = "squared",
) -> np.ndarray:
    """Windowed DTW distances for a stack of equal-shape pairs.

    Runs the same bit-identical DP as :func:`dtw_numpy`, but advances
    all ``p`` pairs through each lattice row together, amortising the
    per-row NumPy dispatch overhead across the whole batch -- this is
    the kernel behind the large batch/matrix speedups.

    Parameters
    ----------
    xs, ys:
        Arrays of shape ``(p, n)`` and ``(p, m)``: pair ``t`` is
        ``(xs[t], ys[t])``.  All pairs share ``window``.
    window:
        The admitted region, shared by every pair.
    cost:
        Built-in cost name.

    Returns
    -------
    numpy.ndarray
        ``(p,)`` distances; pair ``t`` equals
        ``dtw_numpy(xs[t], ys[t], window=window, cost=cost).distance``
        bit for bit.  Each pair evaluates ``window.cell_count()``
        cells (no early abandoning in the batched kernel).
    """
    named = _require_named_cost(cost)
    X = np.ascontiguousarray(xs, dtype=np.float64)
    Y = np.ascontiguousarray(ys, dtype=np.float64)
    if X.ndim != 2 or Y.ndim != 2 or X.shape[0] != Y.shape[0]:
        raise ValueError("xs and ys must be 2-D with matching pair counts")
    p, n = X.shape
    m = Y.shape[1]
    if (n, m) != (window.n, window.m):
        raise ValueError(
            f"window is {window.n}x{window.m} but series are {n}x{m}"
        )
    if p == 0:
        return np.empty(0, dtype=np.float64)
    return _dtw_antidiag(X, Y, window, named)


def _chunk_rows(shape0: int, count: Optional[int]) -> int:
    """Resolve the ``count=`` padding contract: the number of real
    rows in a possibly padded chunk stack.

    ``None`` means every row is real.  ``count`` beyond the stack (or
    negative) is an error -- padding can only *add* rows, never invent
    them.
    """
    if count is None:
        return shape0
    if not 0 <= count <= shape0:
        raise ValueError(
            f"count={count} outside the chunk's 0..{shape0} rows"
        )
    return count


def dtw_chunk(
    xs,
    ys,
    window: Window,
    cost: CostLike = "squared",
    count: Optional[int] = None,
) -> np.ndarray:
    """Windowed DTW distances for one shape-homogeneous chunk.

    The chunk-kernel face of :func:`dtw_numpy_batch`: pairs arrive
    stacked as ``(chunk, n)`` / ``(chunk, m)`` arrays (the batch
    engine's schedule groups pairs by ``(n, m, band)`` and pads each
    group into reusable scratch stacks), and the anti-diagonal
    wavefront advances every pair of the chunk together.

    Parameters
    ----------
    xs, ys:
        Stacked pairs; row ``t`` is the pair ``(xs[t], ys[t])``.
    window:
        The admitted region, shared by every pair in the chunk.
    cost:
        Built-in cost name.
    count:
        Number of *real* leading rows.  Rows at index ``count`` and
        beyond are padding and are **never read** -- they may hold
        NaN/inf garbage without affecting any result (the property
        suite poisons them on purpose).  ``None`` means all rows are
        real.

    Returns
    -------
    numpy.ndarray
        ``(count,)`` distances; entry ``t`` is bit-identical to
        ``dp_over_window(xs[t], ys[t], window, cost=cost).distance``.
        Each real pair evaluates ``window.cell_count()`` lattice
        cells.

    Raises
    ------
    ValueError
        On shape/window mismatch, a callable cost, an out-of-range
        ``count``, a window excluding the mandatory ``(0, 0)`` start,
        or a non-finite sample in a *real* row (padding is exempt).
    """
    named = _require_named_cost(cost)
    X = np.ascontiguousarray(xs, dtype=np.float64)
    Y = np.ascontiguousarray(ys, dtype=np.float64)
    if X.ndim != 2 or Y.ndim != 2 or X.shape[0] != Y.shape[0]:
        raise ValueError("xs and ys must be 2-D with matching pair counts")
    rows = _chunk_rows(X.shape[0], count)
    # slice the real rows *before* any arithmetic or checks: padding
    # must be unable to affect results, warnings or validation
    X, Y = X[:rows], Y[:rows]
    n, m = X.shape[1], Y.shape[1]
    if (n, m) != (window.n, window.m):
        raise ValueError(
            f"window is {window.n}x{window.m} but series are {n}x{m}"
        )
    if window.ranges[0][0] != 0:
        raise ValueError(
            f"window row 0 starts at column {window.ranges[0][0]}, "
            "excluding the mandatory path start (0, 0)"
        )
    if rows == 0:
        return np.empty(0, dtype=np.float64)
    for name, A in (("xs", X), ("ys", Y)):
        if not np.isfinite(A).all():
            t, i = np.argwhere(~np.isfinite(A))[0]
            raise ValueError(
                f"chunk {name} row {t}: sample {i} is not finite "
                f"({A[t, i]!r})"
            )
    return _dtw_antidiag(X, Y, window, named)


def pairwise_matrix_numpy(
    series: Sequence[Sequence[float]],
    window: Optional[float] = None,
    band: Optional[int] = None,
    cost: CostLike = "squared",
):
    """Symmetric all-pairs DTW distance matrix via the batched kernel.

    Follows the package-wide configuration conventions (the same ones
    :func:`repro.core.matrix.distance_matrix` uses): ``window`` is the
    paper's *fractional* band, ``band`` an absolute half-width in
    cells, at most one of the two (neither means Full DTW), and
    ``cost`` a built-in cost name.

    Returns
    -------
    repro.core.matrix.DistanceMatrix
        With ``measure`` set to ``"cdtw"`` (constrained) or ``"dtw"``
        (unconstrained) and ``cells`` carrying the exact total DP-cell
        count, like every other matrix producer.
    """
    from .matrix import DistanceMatrix

    named = _require_named_cost(cost)
    if window is not None and band is not None:
        raise ValueError("pass either window= or band=, not both")
    k = len(series)
    if k < 2:
        raise ValueError("need at least two series")
    arrs = [_as_series(s, f"series[{i}]") for i, s in enumerate(series)]
    n = len(arrs[0])
    if any(len(a) != n for a in arrs):
        raise ValueError(
            "pairwise_matrix_numpy requires equal-length series "
            "(use distance_matrix for ragged sets)"
        )

    if window is not None:
        win = Window.from_fraction(n, n, window)
    elif band is not None:
        win = Window.band(n, n, band)
    else:
        win = Window.full(n, n)

    pairs = [(i, j) for i in range(k) for j in range(i + 1, k)]
    values = [[0.0] * k for _ in range(k)]
    if pairs:
        xs = np.stack([arrs[i] for i, _ in pairs])
        ys = np.stack([arrs[j] for _, j in pairs])
        dists = dtw_numpy_batch(xs, ys, win, cost=named)
        for (i, j), d in zip(pairs, dists):
            values[i][j] = values[j][i] = float(d)
    measure = "dtw" if (window is None and band is None) else "cdtw"
    return DistanceMatrix(
        values=tuple(tuple(row) for row in values),
        measure=measure,
        cells=win.cell_count() * len(pairs),
    )


# -- envelopes and lower bounds ------------------------------------------


def _sliding_extreme(a: np.ndarray, band: int, ufunc, pad: float) -> np.ndarray:
    """Exact sliding min/max with half-width ``band`` along the last
    axis, via the van Herk/Gil-Werman two-pass prefix/suffix trick:
    O(n) for any band, fully vectorised."""
    if band == 0:
        return a.copy()
    w = 2 * band + 1
    padded = np.concatenate(
        [np.full(a.shape[:-1] + (band,), pad), a,
         np.full(a.shape[:-1] + (band,), pad)], axis=-1,
    )
    length = padded.shape[-1]
    nblocks = -(-length // w)
    total = nblocks * w
    if total > length:
        padded = np.concatenate(
            [padded, np.full(a.shape[:-1] + (total - length,), pad)],
            axis=-1,
        )
    blocks = padded.reshape(a.shape[:-1] + (nblocks, w))
    prefix = ufunc.accumulate(blocks, axis=-1)
    suffix = ufunc.accumulate(blocks[..., ::-1], axis=-1)[..., ::-1]
    prefix = prefix.reshape(a.shape[:-1] + (total,))
    suffix = suffix.reshape(a.shape[:-1] + (total,))
    count = a.shape[-1]
    return ufunc(suffix[..., :count], prefix[..., w - 1:w - 1 + count])


def envelope_numpy(x, band: int):
    """Vectorised warping envelope, value-identical to
    :func:`repro.lowerbounds.envelope.envelope`."""
    from ..lowerbounds.envelope import Envelope

    if band < 0:
        raise ValueError("band must be non-negative")
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("cannot compute envelope of an empty series")
    upper = _sliding_extreme(arr, band, np.maximum, -_INF)
    lower = _sliding_extreme(arr, band, np.minimum, _INF)
    return Envelope(band, upper.tolist(), lower.tolist())


def envelope_chunk(
    series,
    band: int,
    count: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Lemire warping envelopes for a stacked chunk of series.

    Two sliding-extreme passes over the whole ``(chunk, n)`` stack at
    once; row ``t`` of the output is value-identical to
    :func:`repro.lowerbounds.envelope.envelope` of ``series[t]``.

    Parameters
    ----------
    series:
        ``(chunk, n)`` stack (a single 1-D series is promoted to one
        row).
    band:
        Envelope half-width in samples.
    count:
        Real leading rows, as in :func:`dtw_chunk`; pad rows are never
        read.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        ``(upper, lower)`` stacks of shape ``(count, n)``.
    """
    if band < 0:
        raise ValueError("band must be non-negative")
    arr = np.ascontiguousarray(series, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[1] == 0:
        raise ValueError("series must stack as a non-empty 2-D chunk")
    rows = _chunk_rows(arr.shape[0], count)
    arr = arr[:rows]
    upper = _sliding_extreme(arr, band, np.maximum, -_INF)
    lower = _sliding_extreme(arr, band, np.minimum, _INF)
    return upper, lower


def lb_keogh_chunk(
    upper,
    lower,
    candidates,
    squared: bool = True,
    abandon_above: Optional[float] = None,
    count: Optional[int] = None,
) -> np.ndarray:
    """LB_Keogh over a stacked chunk, bit-identical to the scalar sum.

    Unlike :func:`lb_keogh_batch` (whose pairwise ``sum`` may differ
    from the scalar implementation in final ulps), this kernel
    accumulates each row's gap costs with ``np.cumsum`` -- a strictly
    sequential left-to-right fold, so every bound equals
    :func:`repro.lowerbounds.lb_keogh.lb_keogh` bit for bit, and the
    ``abandon_above`` decision is identical too: gap costs are
    non-negative, so the running total exceeds the threshold at some
    prefix iff the full total does.

    Parameters
    ----------
    upper, lower:
        Query envelope(s): 1-D ``(n,)`` arrays shared by every
        candidate, or ``(chunk, n)`` stacks with one envelope per row
        (e.g. from :func:`envelope_chunk`).
    candidates:
        ``(chunk, n)`` candidate stack (1-D promotes to one row).
    squared:
        Squared (default) or absolute per-point gap cost.
    abandon_above:
        Bounds exceeding this report ``inf``, exactly as the scalar
        early-abandon does.
    count:
        Real leading rows, as in :func:`dtw_chunk`; pad rows (of the
        candidates *and* of stacked envelopes) are never read.

    Returns
    -------
    numpy.ndarray
        ``(count,)`` bounds.
    """
    C = np.ascontiguousarray(candidates, dtype=np.float64)
    if C.ndim == 1:
        C = C[None, :]
    rows = _chunk_rows(C.shape[0], count)
    C = C[:rows]
    up = np.asarray(upper, dtype=np.float64)
    lo = np.asarray(lower, dtype=np.float64)
    if up.shape != lo.shape:
        raise ValueError("upper and lower envelopes must match in shape")
    if up.ndim == 2:
        up, lo = up[:rows], lo[:rows]
    elif up.ndim != 1:
        raise ValueError("envelopes must be 1-D or a 2-D stack")
    if up.shape[-1] != C.shape[1]:
        raise ValueError(
            f"candidate length {C.shape[1]} != envelope length "
            f"{up.shape[-1]}"
        )
    if rows == 0:
        return np.empty(0, dtype=np.float64)
    gaps = _gap_costs(C, lo, up, squared)
    # cumsum adds strictly left to right; its last column is the
    # scalar loop's total, operand for operand
    totals = np.cumsum(gaps, axis=1)[:, -1]
    if abandon_above is not None:
        totals[totals > abandon_above] = _INF
    return totals


def lb_improved_chunk(
    upper,
    lower,
    candidates,
    query,
    band: int,
    squared: bool = True,
    keogh=None,
    abandon_above: Optional[float] = None,
    count: Optional[int] = None,
) -> np.ndarray:
    """LB_Improved over a stacked chunk, bit-identical to the scalar.

    Lemire's two-pass bound
    (:func:`repro.lowerbounds.lb_improved.lb_improved`): the first
    pass is LB_Keogh of each candidate against the query envelope;
    the second clips each candidate into that envelope (``np.clip``
    is a pure selection, matching the scalar projection bit for bit),
    builds the clipped rows' envelopes with one
    :func:`envelope_chunk` call, and charges the query's gaps to
    them.  Both passes accumulate with ``np.cumsum`` -- a strict
    left-to-right fold -- and the passes combine with a single
    addition, exactly as the scalar does, so values *and* abandon
    decisions are bit-identical.

    Parameters
    ----------
    upper, lower:
        Query envelope(s), band-``band``: 1-D ``(n,)`` arrays shared
        by every candidate, or ``(chunk, n)`` per-row stacks.
    candidates:
        ``(chunk, n)`` candidate stack (1-D promotes to one row).
    query:
        The query series, ``(n,)``.
    band:
        Sakoe-Chiba half-width; the second pass's envelopes use it.
    squared:
        Squared (default) or absolute per-point gap cost.
    keogh:
        Optional precomputed *full* first-pass bounds aligned with the
        candidate rows (e.g. the cascade's forward-Keogh stage
        values); computed here when ``None``.
    abandon_above:
        Bounds exceeding this report ``inf``, exactly as the scalar
        early-abandon does.
    count:
        Real leading rows, as in :func:`dtw_chunk`; pad rows are never
        read.

    Returns
    -------
    numpy.ndarray
        ``(count,)`` bounds.
    """
    if band < 0:
        raise ValueError("band must be non-negative")
    C = np.ascontiguousarray(candidates, dtype=np.float64)
    if C.ndim == 1:
        C = C[None, :]
    rows = _chunk_rows(C.shape[0], count)
    C = C[:rows]
    q = np.ascontiguousarray(query, dtype=np.float64)
    if q.ndim != 1 or q.shape[0] != C.shape[1]:
        raise ValueError("query and candidates must share their length")
    up = np.asarray(upper, dtype=np.float64)
    lo = np.asarray(lower, dtype=np.float64)
    if up.shape != lo.shape:
        raise ValueError("upper and lower envelopes must match in shape")
    if up.ndim == 2:
        up, lo = up[:rows], lo[:rows]
    elif up.ndim != 1:
        raise ValueError("envelopes must be 1-D or a 2-D stack")
    if up.shape[-1] != C.shape[1]:
        raise ValueError(
            f"candidate length {C.shape[1]} != envelope length "
            f"{up.shape[-1]}"
        )
    if rows == 0:
        return np.empty(0, dtype=np.float64)

    if keogh is None:
        first = np.cumsum(_gap_costs(C, lo, up, squared), axis=1)[:, -1]
    else:
        first = np.ascontiguousarray(keogh, dtype=np.float64)[:rows]
        if first.shape != (rows,):
            raise ValueError(
                "keogh must supply one full first-pass bound per row"
            )

    # projection onto the query envelope: min(max(c, lower), upper) is
    # the scalar clip's selection, operand for operand
    H = np.clip(C, lo, up)
    env_upper, env_lower = envelope_chunk(H, band)
    second = np.cumsum(
        _gap_costs(q[None, :], env_lower, env_upper, squared), axis=1
    )[:, -1]
    totals = first + second
    if abandon_above is not None:
        totals[totals > abandon_above] = _INF
    return totals


def _gap_costs(values: np.ndarray, lower: np.ndarray, upper: np.ndarray,
               squared: bool) -> np.ndarray:
    gaps = np.maximum(values - upper, 0.0) + np.maximum(lower - values, 0.0)
    if squared:
        np.multiply(gaps, gaps, out=gaps)
    return gaps


def lb_keogh_batch(
    query_envelope,
    candidates,
    squared: bool = True,
    abandon_above: Optional[float] = None,
) -> np.ndarray:
    """LB_Keogh of every candidate against one query envelope.

    One vectorised pass over a ``(k, n)`` candidate stack; candidates
    whose bound exceeds ``abandon_above`` report ``inf``, mirroring the
    scalar :func:`repro.lowerbounds.lb_keogh.lb_keogh` contract.  Sums
    use NumPy's pairwise reduction, so values may differ from the
    scalar implementation in the last ulps (bounds, not distances).
    """
    C = np.ascontiguousarray(candidates, dtype=np.float64)
    if C.ndim == 1:
        C = C[None, :]
    if C.shape[1] != len(query_envelope):
        raise ValueError(
            f"candidate length {C.shape[1]} != envelope length "
            f"{len(query_envelope)}"
        )
    upper = np.asarray(query_envelope.upper, dtype=np.float64)
    lower = np.asarray(query_envelope.lower, dtype=np.float64)
    totals = _gap_costs(C, lower, upper, squared).sum(axis=1)
    if abandon_above is not None:
        totals[totals > abandon_above] = _INF
    return totals


def lb_keogh_reversed_batch(
    query,
    candidates,
    band: int,
    squared: bool = True,
    abandon_above: Optional[float] = None,
) -> np.ndarray:
    """Reversed LB_Keogh (candidate envelopes vs the query), batched:
    all candidate envelopes come from one :func:`envelope_chunk` call
    over the stacked candidates."""
    q = np.ascontiguousarray(query, dtype=np.float64)
    C = np.ascontiguousarray(candidates, dtype=np.float64)
    if C.ndim == 1:
        C = C[None, :]
    if C.shape[1] != q.shape[0]:
        raise ValueError("query and candidates must share their length")
    upper, lower = envelope_chunk(C, band)
    totals = _gap_costs(q[None, :], lower, upper, squared).sum(axis=1)
    if abandon_above is not None:
        totals[totals > abandon_above] = _INF
    return totals


def lb_kim_batch(
    x,
    candidates,
    cost: CostLike = "squared",
    tiers: int = 2,
) -> np.ndarray:
    """Batched :func:`repro.lowerbounds.lb_kim.lb_kim` against one
    query ``x`` (equal lengths, named costs)."""
    named = _require_named_cost(cost)
    if tiers not in (1, 2):
        raise ValueError("tiers must be 1 or 2")
    q = np.ascontiguousarray(x, dtype=np.float64)
    C = np.ascontiguousarray(candidates, dtype=np.float64)
    if C.ndim == 1:
        C = C[None, :]
    n = q.shape[0]
    if n == 0:
        raise ValueError("cannot bound empty series")
    if C.shape[1] != n:
        raise ValueError("lb_kim requires equal-length series")

    def d(a, b):
        diff = a - b
        return diff * diff if named == "squared" else np.abs(diff)

    if n == 1:
        return d(q[0], C[:, 0])
    bound = d(q[0], C[:, 0]) + d(q[-1], C[:, -1])
    if tiers == 2 and n >= 4:
        bound += np.minimum(
            np.minimum(d(q[1], C[:, 0]), d(q[0], C[:, 1])),
            d(q[1], C[:, 1]),
        )
        bound += np.minimum(
            np.minimum(d(q[-2], C[:, -1]), d(q[-1], C[:, -2])),
            d(q[-2], C[:, -2]),
        )
    return bound


# -- multivariate (nd) kernels -------------------------------------------
#
# A multivariate series is shaped ``(length, dims)``.  The dependent
# DP's local cost is the per-sample squared-Euclidean (or L1) distance,
# accumulated **per channel in channel order** -- a strict left fold
# from 0.0, exactly like :func:`repro.core.multivariate.vector_squared_cost`
# -- so every lattice value (and hence every distance, cell count, path
# and abandon decision) is bit-identical to the pure engine.  A
# ``np.sum(..., axis=-1)`` over channels would NOT be: NumPy's pairwise
# reduction reassociates the additions.


def _as_series_nd(x, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValueError(
            f"{name} must be a non-empty multivariate series shaped "
            "(length, dims)"
        )
    if not np.isfinite(arr).all():
        i, k = np.argwhere(~np.isfinite(arr))[0]
        raise ValueError(
            f"series {name}: sample {i} component {k} is not finite "
            f"({arr[i, k]!r})"
        )
    return arr


def _nd_result_cost(named: str) -> str:
    # the pure engine names nd results after the resolved vector-cost
    # callable; mirror it so result objects match field for field
    return "vector_squared_cost" if named == "squared" else "vector_abs_cost"


def _local_cost_matrix_nd(X: np.ndarray, Y: np.ndarray, ranges,
                          wmax: int, named: str) -> np.ndarray:
    """Rectangularised per-cell vector costs for the nd row sweep.

    ``L[i, k]`` is the vector cost of cell ``(i, lo_i + k)``; channels
    accumulate sequentially from 0.0 (the left-fold identity), never
    via a pairwise reduction.
    """
    n, m = X.shape[0], Y.shape[0]
    lo = np.fromiter((r[0] for r in ranges), dtype=np.int64, count=n)
    cols = lo[:, None] + np.arange(wmax, dtype=np.int64)[None, :]
    np.minimum(cols, m - 1, out=cols)
    L = np.zeros((n, wmax), dtype=np.float64)
    for k in range(X.shape[1]):
        D = X[:, k][:, None] - Y[cols, k]
        if named == "squared":
            np.multiply(D, D, out=D)
        else:
            np.abs(D, out=D)
        L += D
    return L


def _antidiag_block_nd(X, Y, n, m, istart, iend, I, J, named) -> np.ndarray:
    # per-channel sequential accumulation of the skewed local costs;
    # the wavefront sweep itself is channel-agnostic
    p = X.shape[0]
    LS = np.zeros((p,) + I.shape, dtype=np.float64)
    for k in range(X.shape[2]):
        D = X[:, :, k][:, I] - Y[:, :, k][:, J]
        if named == "squared":
            np.multiply(D, D, out=D)
        else:
            np.abs(D, out=D)
        LS += D
    return _antidiag_sweep(LS, n, m, istart, iend)


def _dtw_antidiag_nd(X: np.ndarray, Y: np.ndarray, window: Window,
                     named: str) -> np.ndarray:
    """Distances for a ``(p, n, dims) x (p, m, dims)`` pair stack by
    wavefront sweep, bit-identical to the pure engine with the vector
    cost."""
    p, dims = X.shape[0], X.shape[2]
    n, m = window.n, window.m
    istart, iend, I, J = _antidiag_layout(window)
    out = np.empty(p, dtype=np.float64)
    block = max(1, _BLOCK_BUDGET_CELLS // (I.size * dims))
    for start in range(0, p, block):
        sl = slice(start, min(start + block, p))
        out[sl] = _antidiag_block_nd(X[sl], Y[sl], n, m, istart, iend,
                                     I, J, named)
    return out


def dtw_nd_numpy(
    x,
    y,
    window: Optional[Window] = None,
    band: Optional[int] = None,
    cost: CostLike = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
) -> DtwResult:
    """NumPy windowed dependent DTW over ``(length, dims)`` series.

    Bit-identical (distance, ``cells``, path, abandon decisions, and
    the result's ``cost`` name) to
    :func:`repro.core.engine.dp_over_window` with the resolved vector
    cost of :mod:`repro.core.multivariate` -- the contract
    ``tests/core/test_nd_kernels.py`` fuzzes.  Parameters mirror
    :func:`dtw_numpy`; ``cost`` names the per-channel local cost
    (``"squared"`` -> per-sample squared Euclidean, ``"abs"`` -> L1).
    """
    named = _require_named_cost(cost)
    xa = _as_series_nd(x, "x")
    ya = _as_series_nd(y, "y")
    if xa.shape[1] != ya.shape[1]:
        raise ValueError(
            f"dimension mismatch: {xa.shape[1]} vs {ya.shape[1]}"
        )
    n, m = xa.shape[0], ya.shape[0]
    win = _resolve_window(n, m, window, band)
    if (n, m) != (win.n, win.m):
        raise ValueError(
            f"window is {win.n}x{win.m} but series are {n}x{m}"
        )
    ranges = win.ranges
    if ranges[0][0] != 0:
        raise ValueError(
            f"window row 0 starts at column {ranges[0][0]}, excluding "
            "the mandatory path start (0, 0)"
        )

    name = _nd_result_cost(named)
    if abandon_above is None and not return_path:
        dist = _dtw_antidiag_nd(xa[None], ya[None], win, named)
        cells = sum(hi - lo + 1 for lo, hi in ranges)
        return DtwResult(float(dist[0]), None, cells, name)

    wmax = max(hi - lo + 1 for lo, hi in ranges)
    L = _local_cost_matrix_nd(xa, ya, ranges, wmax, named)
    abandoned, cells, rows, bufp = _row_sweep(
        L, ranges, m, return_path, abandon_above, None
    )
    if abandoned:
        return DtwResult(inf, None, cells, name, abandoned=True)
    distance = float(bufp[m])
    path = _backtrack(rows, ranges) if return_path else None
    return DtwResult(distance, path, cells, name)


def dtw_nd_chunk(
    xs,
    ys,
    window: Window,
    cost: CostLike = "squared",
    count: Optional[int] = None,
) -> np.ndarray:
    """Dependent-DTW distances for one shape-homogeneous nd chunk.

    The multivariate face of :func:`dtw_chunk`: pairs arrive stacked
    as ``(chunk, n, dims)`` / ``(chunk, m, dims)`` arrays and every
    pair advances through the anti-diagonal wavefront together.  The
    ``count=`` padding contract is identical -- rows at index
    ``count`` and beyond are **never read** and may hold NaN/inf
    garbage; real rows are sliced off before any arithmetic or
    validation.

    Returns
    -------
    numpy.ndarray
        ``(count,)`` distances; entry ``t`` is bit-identical to
        ``dtw_nd_numpy(xs[t], ys[t], window=window, cost=cost)`` (and
        hence to the pure engine with the vector cost).
    """
    named = _require_named_cost(cost)
    X = np.ascontiguousarray(xs, dtype=np.float64)
    Y = np.ascontiguousarray(ys, dtype=np.float64)
    if X.ndim != 3 or Y.ndim != 3 or X.shape[0] != Y.shape[0]:
        raise ValueError(
            "xs and ys must be 3-D (chunk, length, dims) stacks with "
            "matching pair counts"
        )
    if X.shape[2] != Y.shape[2]:
        raise ValueError(
            f"dimension mismatch: {X.shape[2]} vs {Y.shape[2]}"
        )
    rows = _chunk_rows(X.shape[0], count)
    # slice the real rows *before* any arithmetic or checks: padding
    # must be unable to affect results, warnings or validation
    X, Y = X[:rows], Y[:rows]
    n, m = X.shape[1], Y.shape[1]
    if (n, m) != (window.n, window.m):
        raise ValueError(
            f"window is {window.n}x{window.m} but series are {n}x{m}"
        )
    if window.ranges[0][0] != 0:
        raise ValueError(
            f"window row 0 starts at column {window.ranges[0][0]}, "
            "excluding the mandatory path start (0, 0)"
        )
    if rows == 0:
        return np.empty(0, dtype=np.float64)
    for name, A in (("xs", X), ("ys", Y)):
        if not np.isfinite(A).all():
            t, i, k = np.argwhere(~np.isfinite(A))[0]
            raise ValueError(
                f"chunk {name} row {t}: sample {i} component {k} is "
                f"not finite ({A[t, i, k]!r})"
            )
    return _dtw_antidiag_nd(X, Y, window, named)


def envelope_nd_chunk(
    series,
    band: int,
    count: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel Lemire envelopes for a stacked nd chunk.

    Each channel's envelope is computed independently (the
    multivariate bounds charge gap costs per channel and sum), so row
    ``t`` channel ``k`` of the output is value-identical to
    :func:`repro.lowerbounds.envelope.envelope` of
    ``series[t][:, k]``.

    Parameters
    ----------
    series:
        ``(chunk, n, dims)`` stack (a single ``(n, dims)`` series is
        promoted to one row).
    band:
        Envelope half-width in samples.
    count:
        Real leading rows, as in :func:`dtw_chunk`; pad rows are never
        read.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        ``(upper, lower)`` stacks of shape ``(count, n, dims)`` --
        sample-major, like the series themselves.
    """
    if band < 0:
        raise ValueError("band must be non-negative")
    arr = np.ascontiguousarray(series, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[None]
    if arr.ndim != 3 or arr.shape[1] == 0 or arr.shape[2] == 0:
        raise ValueError(
            "series must stack as a non-empty (chunk, length, dims) "
            "3-D chunk"
        )
    rows = _chunk_rows(arr.shape[0], count)
    arr = arr[:rows]
    # the sliding extreme runs over the last axis; put length there
    swapped = np.ascontiguousarray(arr.swapaxes(1, 2))
    upper = _sliding_extreme(swapped, band, np.maximum, -_INF)
    lower = _sliding_extreme(swapped, band, np.minimum, _INF)
    return upper.swapaxes(1, 2), lower.swapaxes(1, 2)


def lb_keogh_nd_chunk(
    upper,
    lower,
    candidates,
    squared: bool = True,
    abandon_above: Optional[float] = None,
    count: Optional[int] = None,
) -> np.ndarray:
    """Multivariate LB_Keogh over a stacked chunk: per-channel scalar
    LB_Keogh values summed in channel order.

    The summed bound lower-bounds **both** multivariate measures: it
    is admissible for ``cdtw_i`` per channel, and
    ``cdtw_i <= cdtw_d`` (the dependent optimum's shared path is
    admissible for every channel).  Bit-identical to the pure-python
    twin: each channel accumulates with ``np.cumsum`` (a strict
    left-to-right fold) and channels accumulate sequentially from 0.0.

    Parameters
    ----------
    upper, lower:
        Query envelope(s): ``(n, dims)`` arrays shared by every
        candidate, or ``(chunk, n, dims)`` stacks with one envelope
        per row (e.g. from :func:`envelope_nd_chunk`).
    candidates:
        ``(chunk, n, dims)`` candidate stack (a single series
        promotes to one row).
    squared:
        Squared (default) or absolute per-point gap cost.
    abandon_above:
        Bounds exceeding this report ``inf``.  Gap costs are
        non-negative, so the decision equals the sequential
        early-abandon's.
    count:
        Real leading rows, as in :func:`dtw_chunk`; pad rows (of the
        candidates *and* of stacked envelopes) are never read.

    Returns
    -------
    numpy.ndarray
        ``(count,)`` bounds.
    """
    C = np.ascontiguousarray(candidates, dtype=np.float64)
    if C.ndim == 2:
        C = C[None]
    if C.ndim != 3:
        raise ValueError(
            "candidates must stack as a (chunk, length, dims) 3-D chunk"
        )
    rows = _chunk_rows(C.shape[0], count)
    C = C[:rows]
    up = np.asarray(upper, dtype=np.float64)
    lo = np.asarray(lower, dtype=np.float64)
    if up.shape != lo.shape:
        raise ValueError("upper and lower envelopes must match in shape")
    if up.ndim == 3:
        up, lo = up[:rows], lo[:rows]
    elif up.ndim != 2:
        raise ValueError(
            "envelopes must be (length, dims) or a (chunk, length, "
            "dims) stack"
        )
    if up.shape[-2:] != C.shape[1:]:
        raise ValueError(
            f"candidate shape {C.shape[1:]} != envelope shape "
            f"{up.shape[-2:]}"
        )
    if rows == 0:
        return np.empty(0, dtype=np.float64)
    totals = np.zeros(rows, dtype=np.float64)
    for k in range(C.shape[2]):
        gaps = _gap_costs(C[..., k], lo[..., k], up[..., k], squared)
        # cumsum adds strictly left to right; its last column is the
        # scalar loop's per-channel total, operand for operand
        totals += np.cumsum(gaps, axis=1)[:, -1]
    if abandon_above is not None:
        totals[totals > abandon_above] = _INF
    return totals


def suffix_gap_bounds_numpy(x, y_envelope, squared: bool = True) -> List[float]:
    """Vectorised, bit-identical
    :func:`repro.search.cumulative.suffix_gap_bounds`: the tail
    accumulation is a reversed cumulative sum, which adds in exactly
    the scalar implementation's order."""
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim != 1 or arr.shape[0] != len(y_envelope):
        raise ValueError(
            f"series length {arr.shape[0]} != envelope length "
            f"{len(y_envelope)}"
        )
    upper = np.asarray(y_envelope.upper, dtype=np.float64)
    lower = np.asarray(y_envelope.lower, dtype=np.float64)
    gaps = _gap_costs(arr, lower, upper, squared)
    out = np.zeros_like(gaps)
    np.cumsum(gaps[:0:-1], out=out[-2::-1])
    return out.tolist()
