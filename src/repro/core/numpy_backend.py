"""NumPy-vectorised DTW backends (cross-validation and bulk work).

The paper's head-to-head timings intentionally use the pure-Python
engine for *both* algorithms ("implemented in the same language,
running on the same hardware").  This module provides an independent,
vectorised implementation used to

* cross-check the pure engine's distances in the test-suite, and
* accelerate bulk distance-matrix computations in examples where the
  comparison is not the point (e.g. clustering a dataset).

``dtw_numpy`` computes the accumulated-cost recurrence row by row:
the diagonal and vertical predecessors vectorise directly, and the
in-row horizontal dependency is resolved with an exact running-minimum
scan per row (a short Python loop over *rows*, NumPy over columns).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def dtw_numpy(
    x: np.ndarray,
    y: np.ndarray,
    band: Optional[int] = None,
    squared: bool = True,
) -> float:
    """Exact (optionally banded) DTW distance via NumPy.

    Parameters
    ----------
    x, y:
        1-D arrays.
    band:
        Sakoe-Chiba half-width in cells (slope-corrected for unequal
        lengths, matching :meth:`repro.core.window.Window.band`), or
        ``None`` for Full DTW.
    squared:
        Use squared local cost (default) or absolute.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 1 or y.ndim != 1 or not len(x) or not len(y):
        raise ValueError("x and y must be non-empty 1-D arrays")
    n, m = len(x), len(y)

    if band is None:
        lo = np.zeros(n, dtype=int)
        hi = np.full(n, m - 1, dtype=int)
    else:
        from .window import Window

        win = Window.band(n, m, band)
        lo = np.array([r[0] for r in win.ranges])
        hi = np.array([r[1] for r in win.ranges])

    INF = np.inf
    prev = np.full(m, INF)
    # row 0
    l0, h0 = lo[0], hi[0]
    if squared:
        local0 = (x[0] - y[l0:h0 + 1]) ** 2
    else:
        local0 = np.abs(x[0] - y[l0:h0 + 1])
    prev[l0:h0 + 1] = np.cumsum(local0)

    for i in range(1, n):
        li, hi_i = lo[i], hi[i]
        cur = np.full(m, INF)
        if squared:
            local = (x[i] - y[li:hi_i + 1]) ** 2
        else:
            local = np.abs(x[i] - y[li:hi_i + 1])
        # best of diagonal / vertical predecessors, vectorised
        diag = np.full(hi_i - li + 1, INF)
        if li == 0:
            diag[1:] = prev[li:hi_i]
        else:
            diag[:] = prev[li - 1:hi_i]
        vert = prev[li:hi_i + 1]
        best = np.minimum(diag, vert)
        # horizontal in-row dependency: exact left-to-right scan
        acc = local + best
        run = acc[0]
        out = np.empty_like(acc)
        out[0] = run
        for k in range(1, len(acc)):
            cand = run + local[k]
            run = cand if cand < acc[k] else acc[k]
            out[k] = run
        cur[li:hi_i + 1] = out
        prev = cur

    return float(prev[m - 1])


def pairwise_matrix_numpy(
    series: list,
    band: Optional[int] = None,
    squared: bool = True,
) -> np.ndarray:
    """Symmetric all-pairs DTW distance matrix via :func:`dtw_numpy`."""
    k = len(series)
    arrs = [np.asarray(s, dtype=float) for s in series]
    out = np.zeros((k, k))
    for i in range(k):
        for j in range(i + 1, k):
            d = dtw_numpy(arrs[i], arrs[j], band=band, squared=squared)
            out[i, j] = out[j, i] = d
    return out
