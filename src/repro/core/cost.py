"""Local (per-cell) cost functions for DTW lattices.

A local cost function measures the dissimilarity of a single pair of
samples ``(x[i], y[j])``.  DTW accumulates local costs along a warping
path; the choice of local cost changes absolute distances but not who
wins any of the paper's timing comparisons, because both cDTW and
FastDTW evaluate the same function per lattice cell.

Two built-in costs are provided:

* ``"squared"`` -- ``(a - b) ** 2``, the cost used in the paper's DTW
  recurrence (Section 2) and the convention under which
  ``cdtw(x, y, band=0)`` equals the squared Euclidean distance.
* ``"abs"`` -- ``|a - b|``, the cost used by the reference ``fastdtw``
  Python package (radius-based approximation, Appendix B).

Arbitrary callables ``f(a, b) -> float`` are accepted anywhere a cost
name is accepted, at some speed penalty (the string forms are inlined
into the dynamic-programming loops).
"""

from __future__ import annotations

from typing import Callable, Union

CostFunction = Callable[[float, float], float]
CostLike = Union[str, CostFunction]

#: Names accepted by every DTW entry point in :mod:`repro.core`.
BUILTIN_COSTS = ("squared", "abs")


def squared_cost(a: float, b: float) -> float:
    """Squared difference ``(a - b) ** 2`` of two samples."""
    d = a - b
    return d * d


def absolute_cost(a: float, b: float) -> float:
    """Absolute difference ``|a - b|`` of two samples."""
    return abs(a - b)


_BY_NAME: dict[str, CostFunction] = {
    "squared": squared_cost,
    "abs": absolute_cost,
}


def resolve_cost(cost: CostLike) -> CostFunction:
    """Turn a cost name or callable into a callable.

    Parameters
    ----------
    cost:
        Either one of :data:`BUILTIN_COSTS` or a callable
        ``f(a, b) -> float``.

    Raises
    ------
    ValueError
        If ``cost`` is a string that is not a built-in cost name.
    TypeError
        If ``cost`` is neither a string nor a callable.
    """
    if isinstance(cost, str):
        try:
            return _BY_NAME[cost]
        except KeyError:
            raise ValueError(
                f"unknown cost {cost!r}; expected one of {BUILTIN_COSTS}"
            ) from None
    if callable(cost):
        return cost
    raise TypeError(f"cost must be a name or callable, got {type(cost).__name__}")


def cost_name(cost: CostLike) -> str:
    """Human-readable name of a cost, for result reprs and reports."""
    if isinstance(cost, str):
        resolve_cost(cost)  # validate
        return cost
    return getattr(cost, "__name__", "custom")
