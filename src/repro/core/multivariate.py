"""Multivariate (n-dimensional) DTW, cDTW and FastDTW.

The paper's workloads are often intrinsically multivariate -- UWave
gestures are 3-axis accelerometry, the third-party Appendix B study
used 36 body-keypoint channels -- and Salvador & Chan define FastDTW
for n-dimensional series.  This module lifts the package's algorithms
to vector samples:

* a sample is a tuple/list of floats; all samples of a series share a
  dimensionality;
* the local cost is the *squared Euclidean distance between samples*
  (``"squared"``) or the L1 distance (``"abs"``), reducing exactly to
  the scalar definitions at dimension 1;
* the DP engine, windows and warping paths are reused unchanged --
  only the local cost and the coarsening (component-wise pair means)
  are dimension-aware.

Every scalar invariant carries over and is property-tested: cDTW is
monotone in the band, FastDTW upper-bounds full DTW and converges with
the radius, and dimension-1 vectors agree with the scalar API.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .cost import CostFunction
from .engine import DtwResult, dp_over_window
from .fastdtw import FastDtwResult
from .validate import validate_series
from .window import Window

Vector = Tuple[float, ...]


def vector_squared_cost(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance between two samples.

    >>> vector_squared_cost((0.0, 0.0), (3.0, 4.0))
    25.0
    """
    total = 0.0
    for ai, bi in zip(a, b):
        d = ai - bi
        total += d * d
    return total


def vector_abs_cost(a: Sequence[float], b: Sequence[float]) -> float:
    """L1 (Manhattan) distance between two samples."""
    return sum(abs(ai - bi) for ai, bi in zip(a, b))


def _resolve_vector_cost(cost: object) -> CostFunction:
    if cost == "squared":
        return vector_squared_cost
    if cost == "abs":
        return vector_abs_cost
    if callable(cost):
        return cost
    raise ValueError(
        f"unknown multivariate cost {cost!r}; expected 'squared', 'abs' "
        "or a callable"
    )


def _as_vectors(x: Sequence[Sequence[float]], name: str) -> List[Vector]:
    validate_series(x, name)
    out = [tuple(float(c) for c in v) for v in x]
    dims = {len(v) for v in out}
    if len(dims) != 1:
        raise ValueError(f"{name}: inconsistent dimensionality {sorted(dims)}")
    if 0 in dims:
        raise ValueError(f"{name}: zero-dimensional samples")
    return out


def _check_same_dim(x: List[Vector], y: List[Vector]) -> None:
    if len(x[0]) != len(y[0]):
        raise ValueError(
            f"dimension mismatch: {len(x[0])} vs {len(y[0])}"
        )


def dtw_nd(
    x: Sequence[Sequence[float]],
    y: Sequence[Sequence[float]],
    cost: object = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
) -> DtwResult:
    """Full DTW between two multivariate series.

    ``x`` and ``y`` are sequences of equal-dimension samples.  For
    1-dimensional samples this equals the scalar :func:`repro.core.dtw.dtw`.
    """
    vx, vy = _as_vectors(x, "series x"), _as_vectors(y, "series y")
    _check_same_dim(vx, vy)
    return dp_over_window(
        vx, vy, Window.full(len(vx), len(vy)),
        cost=_resolve_vector_cost(cost), return_path=return_path,
        abandon_above=abandon_above,
    )


def cdtw_nd(
    x: Sequence[Sequence[float]],
    y: Sequence[Sequence[float]],
    window: Optional[float] = None,
    band: Optional[int] = None,
    cost: object = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
) -> DtwResult:
    """Banded DTW between multivariate series (see :func:`repro.core.cdtw.cdtw`)."""
    if (window is None) == (band is None):
        raise ValueError("specify exactly one of window= or band=")
    vx, vy = _as_vectors(x, "series x"), _as_vectors(y, "series y")
    _check_same_dim(vx, vy)
    n, m = len(vx), len(vy)
    win = (
        Window.from_fraction(n, m, window)
        if window is not None
        else Window.band(n, m, band)
    )
    return dp_over_window(
        vx, vy, win, cost=_resolve_vector_cost(cost),
        return_path=return_path, abandon_above=abandon_above,
    )


def halve_nd(x: Sequence[Vector]) -> List[Vector]:
    """FastDTW's 2-to-1 reduction, component-wise.

    >>> halve_nd([(0.0, 4.0), (2.0, 0.0)])
    [(1.0, 2.0)]
    """
    if len(x) < 2:
        raise ValueError("cannot halve a series of fewer than 2 samples")
    return [
        tuple((a + b) / 2.0 for a, b in zip(x[i], x[i + 1]))
        for i in range(0, len(x) - len(x) % 2, 2)
    ]


def fastdtw_nd(
    x: Sequence[Sequence[float]],
    y: Sequence[Sequence[float]],
    radius: int = 1,
    cost: object = "squared",
) -> FastDtwResult:
    """FastDTW between multivariate series.

    Same recursion as the scalar :func:`repro.core.fastdtw.fastdtw`
    with component-wise coarsening; returns the same result type and
    satisfies the same upper-bound/convergence contracts.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    vx, vy = _as_vectors(x, "series x"), _as_vectors(y, "series y")
    _check_same_dim(vx, vy)
    cost_fn = _resolve_vector_cost(cost)
    result, cells = _fastdtw_nd_rec(vx, vy, radius, cost_fn)
    name = cost if isinstance(cost, str) else getattr(
        cost, "__name__", "custom"
    )
    return FastDtwResult(
        distance=result.distance,
        path=result.path,
        cells=cells,
        cost=name,
        radius=radius,
    )


def _fastdtw_nd_rec(x, y, radius, cost_fn):
    n, m = len(x), len(y)
    min_size = radius + 2
    if n <= min_size or m <= min_size:
        base = dp_over_window(
            x, y, Window.full(n, m), cost=cost_fn, return_path=True
        )
        return base, base.cells
    coarse, coarse_cells = _fastdtw_nd_rec(
        halve_nd(x), halve_nd(y), radius, cost_fn
    )
    window = Window.expand_path(coarse.path, n, m, radius)
    refined = dp_over_window(
        x, y, window, cost=cost_fn, return_path=True
    )
    return refined, coarse_cells + refined.cells


def interleave(*channels: Sequence[float]) -> List[Vector]:
    """Zip per-axis channels into one multivariate series.

    The inverse of how archives like UWave store multi-axis data
    (separate X/Y/Z datasets); ``interleave(xs, ys, zs)`` yields
    3-vectors.

    >>> interleave([1.0, 2.0], [10.0, 20.0])
    [(1.0, 10.0), (2.0, 20.0)]
    """
    if not channels:
        raise ValueError("need at least one channel")
    lengths = {len(c) for c in channels}
    if len(lengths) != 1:
        raise ValueError(f"channel lengths differ: {sorted(lengths)}")
    return [tuple(float(c[i]) for c in channels)
            for i in range(len(channels[0]))]


def magnitude(series: Sequence[Vector]) -> List[float]:
    """Per-sample Euclidean norm -- the common n-D -> 1-D reduction.

    >>> magnitude([(3.0, 4.0)])
    [5.0]
    """
    return [math.sqrt(sum(c * c for c in v)) for v in series]
