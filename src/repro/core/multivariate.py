"""Multivariate (n-dimensional) DTW, cDTW and FastDTW.

The paper's workloads are often intrinsically multivariate -- UWave
gestures are 3-axis accelerometry, the third-party Appendix B study
used 36 body-keypoint channels -- and Salvador & Chan define FastDTW
for n-dimensional series.  This module lifts the package's algorithms
to vector samples:

* a sample is a tuple/list of floats; all samples of a series share a
  dimensionality;
* the local cost is the *squared Euclidean distance between samples*
  (``"squared"``) or the L1 distance (``"abs"``), reducing exactly to
  the scalar definitions at dimension 1;
* the DP engine, windows and warping paths are reused unchanged --
  only the local cost and the coarsening (component-wise pair means)
  are dimension-aware.

Every scalar invariant carries over and is property-tested: cDTW is
monotone in the band, FastDTW upper-bounds full DTW and converges with
the radius, and dimension-1 vectors agree with the scalar API.
"""

from __future__ import annotations

import math
from math import inf
from typing import Callable, List, Optional, Sequence, Tuple

from .cost import CostFunction
from .engine import DtwResult, dp_over_window
from .fastdtw import FastDtwResult
from .validate import series_dims, validate_series
from .window import Window

Vector = Tuple[float, ...]


def vector_squared_cost(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance between two samples.

    >>> vector_squared_cost((0.0, 0.0), (3.0, 4.0))
    25.0
    """
    total = 0.0
    for ai, bi in zip(a, b):
        d = ai - bi
        total += d * d
    return total


def vector_abs_cost(a: Sequence[float], b: Sequence[float]) -> float:
    """L1 (Manhattan) distance between two samples."""
    return sum(abs(ai - bi) for ai, bi in zip(a, b))


def _resolve_vector_cost(cost: object) -> CostFunction:
    if cost == "squared":
        return vector_squared_cost
    if cost == "abs":
        return vector_abs_cost
    if callable(cost):
        return cost
    raise ValueError(
        f"unknown multivariate cost {cost!r}; expected 'squared', 'abs' "
        "or a callable"
    )


def _as_vectors(x: Sequence[Sequence[float]], name: str) -> List[Vector]:
    validate_series(x, name)
    if series_dims(x, name) is None:
        raise ValueError(
            f"{name}: got a flat scalar series; multivariate series "
            "must be shaped (length, dims) -- a sequence of equal-"
            "length sample vectors.  Wrap scalar samples as "
            "1-component vectors ([(v,) for v in x]) or use the "
            "scalar measures."
        )
    return [tuple(float(c) for c in v) for v in x]


def _check_same_dim(x: List[Vector], y: List[Vector]) -> None:
    if len(x[0]) != len(y[0]):
        raise ValueError(
            f"dimension mismatch: {len(x[0])} vs {len(y[0])}"
        )


def dtw_nd(
    x: Sequence[Sequence[float]],
    y: Sequence[Sequence[float]],
    cost: object = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
) -> DtwResult:
    """Full DTW between two multivariate series.

    ``x`` and ``y`` are sequences of equal-dimension samples.  For
    1-dimensional samples this equals the scalar :func:`repro.core.dtw.dtw`.
    """
    vx, vy = _as_vectors(x, "series x"), _as_vectors(y, "series y")
    _check_same_dim(vx, vy)
    return dp_over_window(
        vx, vy, Window.full(len(vx), len(vy)),
        cost=_resolve_vector_cost(cost), return_path=return_path,
        abandon_above=abandon_above,
    )


def cdtw_nd(
    x: Sequence[Sequence[float]],
    y: Sequence[Sequence[float]],
    window: Optional[float] = None,
    band: Optional[int] = None,
    cost: object = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
) -> DtwResult:
    """Banded DTW between multivariate series (see :func:`repro.core.cdtw.cdtw`)."""
    if (window is None) == (band is None):
        raise ValueError("specify exactly one of window= or band=")
    vx, vy = _as_vectors(x, "series x"), _as_vectors(y, "series y")
    _check_same_dim(vx, vy)
    n, m = len(vx), len(vy)
    win = (
        Window.from_fraction(n, m, window)
        if window is not None
        else Window.band(n, m, band)
    )
    return dp_over_window(
        vx, vy, win, cost=_resolve_vector_cost(cost),
        return_path=return_path, abandon_above=abandon_above,
    )


def split_channels(x: Sequence[Sequence[float]]) -> List[List[float]]:
    """The per-channel scalar series of a multivariate series.

    The inverse of :func:`interleave`:
    ``split_channels(interleave(a, b)) == [list(a), list(b)]``.

    >>> split_channels([(1.0, 10.0), (2.0, 20.0)])
    [[1.0, 2.0], [10.0, 20.0]]
    """
    vx = _as_vectors(x, "series")
    return _channels(vx)


def _channels(vx: List[Vector]) -> List[List[float]]:
    dims = len(vx[0])
    return [[v[k] for v in vx] for k in range(dims)]


def independent_nd(
    x: Sequence[Sequence[float]],
    y: Sequence[Sequence[float]],
    channel_fn: Callable[..., DtwResult],
    cost: object = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
) -> DtwResult:
    """The independent-DTW (DTW_I) combinator: per-channel scalar DTWs
    summed in channel order.

    ``channel_fn(cx, cy, abandon_above)`` runs one scalar DTW (any
    backend) and returns a :class:`~repro.core.engine.DtwResult`.  The
    combination is a left fold from ``0.0`` in channel order, so for
    ``dims == 1`` the distance is bit-identical to the single scalar
    result, and two backends whose per-channel results agree bit-for-
    bit agree on the sum too.  ``cells`` is the sum of per-channel DP
    cells; the path (when requested) is a *tuple of per-channel
    paths*.  ``abandon_above`` threads the remaining budget to each
    channel (distances are non-negative, so a channel abandoning
    against ``threshold - sum_so_far`` proves the total exceeds the
    threshold -- the decision is lossless).
    """
    vx, vy = _as_vectors(x, "series x"), _as_vectors(y, "series y")
    _check_same_dim(vx, vy)
    name = cost if isinstance(cost, str) else getattr(
        cost, "__name__", "custom"
    )
    total = 0.0
    cells = 0
    paths: Optional[List[object]] = [] if return_path else None
    for cx, cy in zip(_channels(vx), _channels(vy)):
        remaining = (
            None if abandon_above is None else abandon_above - total
        )
        r = channel_fn(cx, cy, remaining)
        cells += r.cells
        if r.abandoned:
            return DtwResult(inf, None, cells, name, abandoned=True)
        total += r.distance
        if paths is not None:
            paths.append(r.path)
    return DtwResult(
        total, tuple(paths) if paths is not None else None, cells, name
    )


def dtw_i(
    x: Sequence[Sequence[float]],
    y: Sequence[Sequence[float]],
    cost: object = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
) -> DtwResult:
    """Independent full DTW: the sum of per-channel scalar DTWs.

    ``cost`` is a *scalar* local cost (applied per channel), unlike
    :func:`dtw_nd`'s vector cost.  ``DTW_I(x, y) <= DTW_D(x, y)`` for
    the squared cost: the dependent DP's shared path is admissible for
    every channel, so each channel's free optimum can only be cheaper.
    """

    def channel(cx: List[float], cy: List[float], ab) -> DtwResult:
        return dp_over_window(
            cx, cy, Window.full(len(cx), len(cy)), cost=cost,
            return_path=return_path, abandon_above=ab,
        )

    return independent_nd(
        x, y, channel, cost=cost, return_path=return_path,
        abandon_above=abandon_above,
    )


def cdtw_i(
    x: Sequence[Sequence[float]],
    y: Sequence[Sequence[float]],
    window: Optional[float] = None,
    band: Optional[int] = None,
    cost: object = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
) -> DtwResult:
    """Independent banded DTW: per-channel scalar cDTWs summed.

    Every channel uses the same Sakoe-Chiba band (exactly one of
    ``window``/``band``, as in :func:`repro.core.cdtw.cdtw`).
    """
    if (window is None) == (band is None):
        raise ValueError("specify exactly one of window= or band=")
    win_cache: dict = {}

    def channel(cx: List[float], cy: List[float], ab) -> DtwResult:
        key = (len(cx), len(cy))
        win = win_cache.get(key)
        if win is None:
            win = win_cache[key] = (
                Window.from_fraction(key[0], key[1], window)
                if window is not None
                else Window.band(key[0], key[1], band)
            )
        return dp_over_window(
            cx, cy, win, cost=cost, return_path=return_path,
            abandon_above=ab,
        )

    return independent_nd(
        x, y, channel, cost=cost, return_path=return_path,
        abandon_above=abandon_above,
    )


def halve_nd(x: Sequence[Vector]) -> List[Vector]:
    """FastDTW's 2-to-1 reduction, component-wise.

    >>> halve_nd([(0.0, 4.0), (2.0, 0.0)])
    [(1.0, 2.0)]
    """
    if len(x) < 2:
        raise ValueError("cannot halve a series of fewer than 2 samples")
    return [
        tuple((a + b) / 2.0 for a, b in zip(x[i], x[i + 1]))
        for i in range(0, len(x) - len(x) % 2, 2)
    ]


def fastdtw_nd(
    x: Sequence[Sequence[float]],
    y: Sequence[Sequence[float]],
    radius: int = 1,
    cost: object = "squared",
    abandon_above: Optional[float] = None,
) -> FastDtwResult:
    """FastDTW between multivariate series.

    Same recursion as the scalar :func:`repro.core.fastdtw.fastdtw`
    with component-wise coarsening; returns the same result type and
    satisfies the same upper-bound/convergence contracts.

    ``abandon_above`` early-abandons the final refinement DP (the one
    that produces the returned distance) once every cell of a row
    exceeds the threshold; the coarser recursion levels still run in
    full, since their paths seed the refinement window.  An abandoned
    result has ``distance=inf`` and no path, exactly like the scalar
    engine's abandoned :class:`~repro.core.engine.DtwResult`.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    vx, vy = _as_vectors(x, "series x"), _as_vectors(y, "series y")
    _check_same_dim(vx, vy)
    cost_fn = _resolve_vector_cost(cost)
    result, cells = _fastdtw_nd_rec(
        vx, vy, radius, cost_fn, abandon_above
    )
    name = cost if isinstance(cost, str) else getattr(
        cost, "__name__", "custom"
    )
    return FastDtwResult(
        distance=result.distance,
        path=result.path,
        cells=cells,
        cost=name,
        radius=radius,
        abandoned=result.abandoned,
    )


def _fastdtw_nd_rec(x, y, radius, cost_fn, abandon_above=None):
    # ``abandon_above`` applies only at this level's final DP; the
    # recursive call below deliberately omits it (coarse paths must be
    # complete to seed the refinement window)
    n, m = len(x), len(y)
    min_size = radius + 2
    if n <= min_size or m <= min_size:
        base = dp_over_window(
            x, y, Window.full(n, m), cost=cost_fn, return_path=True,
            abandon_above=abandon_above,
        )
        return base, base.cells
    coarse, coarse_cells = _fastdtw_nd_rec(
        halve_nd(x), halve_nd(y), radius, cost_fn
    )
    window = Window.expand_path(coarse.path, n, m, radius)
    refined = dp_over_window(
        x, y, window, cost=cost_fn, return_path=True,
        abandon_above=abandon_above,
    )
    return refined, coarse_cells + refined.cells


def interleave(*channels: Sequence[float]) -> List[Vector]:
    """Zip per-axis channels into one multivariate series.

    The inverse of how archives like UWave store multi-axis data
    (separate X/Y/Z datasets); ``interleave(xs, ys, zs)`` yields
    3-vectors.

    >>> interleave([1.0, 2.0], [10.0, 20.0])
    [(1.0, 10.0), (2.0, 20.0)]
    """
    if not channels:
        raise ValueError("need at least one channel")
    lengths = {len(c) for c in channels}
    if len(lengths) != 1:
        raise ValueError(f"channel lengths differ: {sorted(lengths)}")
    return [tuple(float(c[i]) for c in channels)
            for i in range(len(channels[0]))]


def magnitude(series: Sequence[Vector]) -> List[float]:
    """Per-sample Euclidean norm -- the common n-D -> 1-D reduction.

    >>> magnitude([(3.0, 4.0)])
    [5.0]
    """
    return [math.sqrt(sum(c * c for c in v)) for v in series]
