"""Piecewise Aggregate Approximation (PAA) and halving downsampling.

PAA replaces a series by the means of consecutive blocks.  FastDTW's
coarsening step is PAA with block size 2 applied recursively; the
Appendix A experiment uses 8-to-1 PAA to show how coarsening can invert
the warp direction of a pathological pair.

Two conventions matter and both are provided:

* :func:`halve` -- FastDTW's own reduction: consecutive *pairs* are
  averaged and a dangling final sample (odd length) is dropped,
  matching the reference implementation of Salvador & Chan.
* :func:`paa` -- classic PAA to an arbitrary number of segments, with
  fractional block boundaries handled by weighted means so that every
  sample contributes exactly once.
"""

from __future__ import annotations

from typing import List, Sequence


def halve(x: Sequence[float]) -> List[float]:
    """FastDTW's 2-to-1 reduction: mean of consecutive pairs.

    An odd-length series loses its final sample, exactly as in the
    reference implementation (``range(0, len(x) - len(x) % 2, 2)``).

    >>> halve([0.0, 2.0, 4.0, 6.0])
    [1.0, 5.0]
    >>> halve([0.0, 2.0, 7.0])
    [1.0]
    """
    if len(x) < 2:
        raise ValueError("cannot halve a series of fewer than 2 samples")
    return [(x[i] + x[i + 1]) / 2.0 for i in range(0, len(x) - len(x) % 2, 2)]


def paa(x: Sequence[float], segments: int) -> List[float]:
    """Classic PAA: reduce ``x`` to ``segments`` block means.

    Block boundaries need not be integers; boundary samples contribute
    to both neighbouring blocks with fractional weight, so the result
    is exact for any ``segments <= len(x)``.

    >>> paa([1.0, 1.0, 3.0, 3.0], 2)
    [1.0, 3.0]
    >>> paa([1.0, 2.0, 3.0], 3)
    [1.0, 2.0, 3.0]
    """
    n = len(x)
    if segments < 1:
        raise ValueError("segments must be positive")
    if segments > n:
        raise ValueError(f"cannot expand {n} samples into {segments} segments")
    if segments == n:
        return [float(v) for v in x]
    out: List[float] = []
    block = n / segments
    for s in range(segments):
        start = s * block
        end = (s + 1) * block
        total = 0.0
        i = int(start)
        pos = start
        while pos < end - 1e-12:
            nxt = min(float(i + 1), end)
            total += x[i] * (nxt - pos)
            pos = nxt
            i += 1
        out.append(total / block)
    return out


def paa_factor(x: Sequence[float], factor: int) -> List[float]:
    """PAA by an integer downsampling *factor* (e.g. 8-to-1).

    A convenience wrapper over :func:`paa`: the output has
    ``ceil(len(x) / factor)`` segments, so a trailing partial block is
    averaged over its actual (shorter) extent.
    """
    if factor < 1:
        raise ValueError("factor must be positive")
    n = len(x)
    out: List[float] = []
    for start in range(0, n, factor):
        block = x[start:start + factor]
        out.append(sum(block) / len(block))
    return out
