"""The canonical measure registry and its pairwise dispatch.

Every subsystem that loops over "all the measures the paper compares"
-- the all-pairs matrix, 1-NN classification, the batch engine, the
CLI -- must agree on what those measures are.  Historically
:mod:`repro.core.matrix` and :mod:`repro.classify.knn` each kept their
own tuple and they drifted (``"fastdtw_reference"`` existed in one but
not the other).  This module is now the single source of truth: the
:data:`MEASURES` tuple plus :func:`measure_fn`, the one place a measure
name is turned into a pairwise distance callable.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from .cdtw import cdtw
from .cost import CostLike
from .dtw import dtw
from .euclidean import euclidean
from .fastdtw import fastdtw
from .fastdtw_reference import fastdtw_reference

#: The canonical registry: every pairwise measure the package compares.
MEASURES = (
    "dtw", "cdtw", "fastdtw", "fastdtw_reference", "euclidean",
    "rle_dtw", "rle_cdtw",
    "dtw_d", "cdtw_d", "dtw_i", "cdtw_i",
)

#: Measures whose results carry DP-cell provenance (Euclidean is O(n),
#: no lattice, and always reports zero cells).
CELL_COUNTED_MEASURES = (
    "dtw", "cdtw", "fastdtw", "fastdtw_reference", "rle_dtw", "rle_cdtw",
    "dtw_d", "cdtw_d", "dtw_i", "cdtw_i",
)

#: The compressed-domain exact measures (run-length encoded input).
RLE_MEASURES = ("rle_dtw", "rle_cdtw")

#: The multivariate measures: input series are shaped ``(length,
#: dims)`` (every sample an equal-length vector).  ``_d`` is dependent
#: DTW (one DP, per-sample squared-Euclidean local cost); ``_i`` is
#: independent DTW (per-channel scalar DTWs summed, so
#: ``DTW_I <= DTW_D`` for the squared cost).
ND_MEASURES = ("dtw_d", "cdtw_d", "dtw_i", "cdtw_i")

#: The nd measures that take a band (exactly one of window=/band=).
ND_BANDED_MEASURES = ("cdtw_d", "cdtw_i")

PairwiseFn = Callable[[Sequence[float], Sequence[float]], object]


def validate_measure(measure: str) -> None:
    """Raise ``ValueError`` unless ``measure`` is in :data:`MEASURES`."""
    if measure not in MEASURES:
        raise ValueError(f"unknown measure {measure!r}; pick from {MEASURES}")


def measure_fn(
    measure: str,
    window: Optional[float] = None,
    band: Optional[int] = None,
    radius: int = 1,
    cost: CostLike = "squared",
    return_path: bool = False,
    backend: Optional[str] = None,
) -> PairwiseFn:
    """Build the pairwise callable for one measure configuration.

    Parameters
    ----------
    measure:
        One of :data:`MEASURES`.
    window, band:
        cDTW constraint (exactly one, for ``measure="cdtw"`` and
        ``measure="rle_cdtw"``).
    radius:
        FastDTW radius (for the fastdtw measures).
    cost:
        Local cost name or callable.
    return_path:
        Ask the exact measures to also recover the warping path (the
        fastdtw measures always return one; Euclidean has none).
    backend:
        Kernel backend for the exact DP measures (``"dtw"``/``"cdtw"``
        and the rle measures),
        resolved via :func:`repro.core.kernels.resolve_backend`
        (``None`` = the process default).  The fastdtw measures and
        Euclidean always run their reference implementations; the
        ``"numpy"`` backend returns bit-identical distances, cells and
        paths but requires a named ``cost``.

    Returns
    -------
    PairwiseFn
        ``fn(x, y)`` returning a result object (or a bare float for
        ``"euclidean"``); unwrap uniformly with :func:`split_result`.
    """
    validate_measure(measure)
    from .kernels import resolve_backend

    resolved = resolve_backend(backend)
    if measure in RLE_MEASURES:
        from .rle import rle_cdtw, rle_dtw

        if measure == "rle_dtw":
            return lambda x, y: rle_dtw(
                x, y, cost=cost, return_path=return_path, backend=resolved
            )
        if (window is None) == (band is None):
            raise ValueError("specify exactly one of window= or band=")
        return lambda x, y: rle_cdtw(
            x, y, window=window, band=band, cost=cost,
            return_path=return_path, backend=resolved,
        )
    if measure in ND_MEASURES:
        return _nd_measure_fn(
            measure, resolved, window, band, cost, return_path
        )
    if resolved != "python" and measure in ("dtw", "cdtw"):
        return _kernel_measure_fn(
            measure, resolved, window, band, cost, return_path
        )
    if measure == "dtw":
        return lambda x, y: dtw(x, y, cost=cost, return_path=return_path)
    if measure == "cdtw":
        return lambda x, y: cdtw(
            x, y, window=window, band=band, cost=cost,
            return_path=return_path,
        )
    if measure == "fastdtw":
        return lambda x, y: fastdtw(x, y, radius=radius, cost=cost)
    if measure == "fastdtw_reference":
        return lambda x, y: fastdtw_reference(x, y, radius=radius, cost=cost)
    return lambda x, y: euclidean(x, y, cost=cost)


def _kernel_measure_fn(
    measure: str,
    backend: str,
    window: Optional[float],
    band: Optional[int],
    cost: CostLike,
    return_path: bool,
) -> PairwiseFn:
    """The dtw/cdtw callable routed through a non-default kernel set.

    Mirrors :func:`repro.core.dtw.dtw` / :func:`repro.core.cdtw.cdtw`
    exactly (same validation, same window construction) but evaluates
    the DP with the chosen backend's kernels; windows are memoised
    because construction is O(n) Python, which shows once the DP runs
    at kernel speed.
    """
    from .kernels import (
        banded_window,
        fraction_window,
        full_window,
        get_kernels,
    )
    from .validate import validate_pair

    kernels = get_kernels(backend)
    if measure == "dtw":
        def full_fn(x, y):
            validate_pair(x, y)
            win = full_window(len(x), len(y))
            return kernels.dtw(
                x, y, win, cost=cost, return_path=return_path
            )
        return full_fn

    if (window is None) == (band is None):
        raise ValueError("specify exactly one of window= or band=")

    def banded_fn(x, y):
        validate_pair(x, y)
        n, m = len(x), len(y)
        if window is not None:
            win = fraction_window(n, m, window)
        else:
            win = banded_window(n, m, band)
        return kernels.dtw(x, y, win, cost=cost, return_path=return_path)
    return banded_fn


def _nd_measure_fn(
    measure: str,
    backend: str,
    window: Optional[float],
    band: Optional[int],
    cost: CostLike,
    return_path: bool,
) -> PairwiseFn:
    """The multivariate measure callable for one backend.

    The dependent measures (``dtw_d``/``cdtw_d``) run one DP with the
    per-sample vector cost: the pure engine via
    :mod:`repro.core.multivariate` on the ``"python"`` backend, the
    backend's stacked ``dtw_nd`` kernel otherwise (bit-identical by
    the nd kernel-parity contract).  The independent measures
    (``dtw_i``/``cdtw_i``) are per-channel *scalar* DTWs summed in
    channel order, so they dispatch each channel through the backend's
    scalar ``dtw`` kernel -- the sum of bit-identical terms is
    bit-identical.
    """
    from .kernels import banded_window, fraction_window, full_window, get_kernels
    from .multivariate import (
        _as_vectors,
        _check_same_dim,
        cdtw_i,
        cdtw_nd,
        dtw_i,
        dtw_nd,
        independent_nd,
    )

    if measure in ND_BANDED_MEASURES:
        if (window is None) == (band is None):
            raise ValueError("specify exactly one of window= or band=")
    elif window is not None or band is not None:
        raise ValueError(
            f"measure {measure!r} takes no window=/band= "
            "(it is unconstrained; use cdtw_d/cdtw_i for banded)"
        )

    if backend == "python":
        if measure == "dtw_d":
            return lambda x, y: dtw_nd(
                x, y, cost=cost, return_path=return_path
            )
        if measure == "cdtw_d":
            return lambda x, y: cdtw_nd(
                x, y, window=window, band=band, cost=cost,
                return_path=return_path,
            )
        if measure == "dtw_i":
            return lambda x, y: dtw_i(
                x, y, cost=cost, return_path=return_path
            )
        return lambda x, y: cdtw_i(
            x, y, window=window, band=band, cost=cost,
            return_path=return_path,
        )

    kernels = get_kernels(backend)

    def _win(n: int, m: int):
        if measure in ("dtw_d", "dtw_i"):
            return full_window(n, m)
        if window is not None:
            return fraction_window(n, m, window)
        return banded_window(n, m, band)

    if measure in ("dtw_d", "cdtw_d"):
        def dependent_fn(x, y):
            vx = _as_vectors(x, "series x")
            vy = _as_vectors(y, "series y")
            _check_same_dim(vx, vy)
            return kernels.dtw_nd(
                vx, vy, _win(len(vx), len(vy)), cost=cost,
                return_path=return_path,
            )
        return dependent_fn

    def channel(cx, cy, ab):
        return kernels.dtw(
            cx, cy, _win(len(cx), len(cy)), cost=cost,
            return_path=return_path, abandon_above=ab,
        )

    return lambda x, y: independent_nd(
        x, y, channel, cost=cost, return_path=return_path
    )


def pair_cost_model(
    measure: str,
    lengths: Sequence[int],
    window: Optional[float] = None,
    band: Optional[int] = None,
    radius: int = 1,
    run_counts: Optional[Sequence[int]] = None,
    dims: int = 1,
) -> Callable[[int, int], int]:
    """Per-pair predicted DP-cell cost function for one measure spec.

    This is the scheduler's cost model, kept beside the measure
    registry so a measure cannot exist without a declared price:
    unknown measures raise instead of silently falling back to a wrong
    model (the bug the old hardcoded dtw/cdtw/fastdtw branch had).

    Prices per pair ``(i, j)`` with ``n = lengths[i]``,
    ``m = lengths[j]``:

    * ``dtw`` -- ``n * m`` (the full lattice, exact);
    * ``cdtw`` -- :func:`repro.core.cdtw.band_cells` (exact window
      geometry, corner clipping included);
    * ``fastdtw``/``fastdtw_reference`` -- Salvador & Chan's own
      ``N * (8r + 14)`` accounting;
    * ``euclidean`` -- ``min(n, m)`` (one cell-equivalent per sample);
    * ``rle_dtw``/``rle_cdtw`` -- ``k*m + l*n`` with ``k``/``l`` the
      run counts from ``run_counts`` (required for these measures;
      the exact boundary-cell count of the block DP);
    * ``dtw_d``/``dtw_i`` -- ``dims * n * m`` and ``cdtw_d``/
      ``cdtw_i`` -- ``dims *`` :func:`~repro.core.cdtw.band_cells`
      (the dependent DP does ``dims`` subtractions per lattice cell;
      the independent measures run ``dims`` scalar DPs over the same
      geometry -- the same total either way).  ``dims`` must be the
      dataset's sample dimensionality for these measures.

    Costs are memoized per shape, so planning a large batch over
    equal-length series prices each shape once.
    """
    validate_measure(measure)
    if measure in RLE_MEASURES and run_counts is None:
        raise ValueError(
            f"measure {measure!r} needs run_counts= to be priced "
            "(the k*m + l*n cost model)"
        )
    if dims < 1:
        raise ValueError(f"dims must be >= 1, got {dims}")
    cache: dict = {}

    def cost(i: int, j: int) -> int:
        n, m = lengths[i], lengths[j]
        if measure in RLE_MEASURES:
            key = (n, m, run_counts[i], run_counts[j])
        else:
            key = (n, m)
        cells = cache.get(key)
        if cells is None:
            if measure == "dtw":
                cells = n * m
            elif measure == "cdtw":
                from .cdtw import band_cells

                cells = band_cells(n, m, window=window, band=band)
            elif measure in ("fastdtw", "fastdtw_reference"):
                from ..timing.cells import fastdtw_cell_model

                cells = fastdtw_cell_model(max(n, m), radius)
            elif measure in RLE_MEASURES:
                k, l = run_counts[i], run_counts[j]
                cells = k * m + l * n
            elif measure in ("dtw_d", "dtw_i"):
                cells = dims * n * m
            elif measure in ND_BANDED_MEASURES:
                from .cdtw import band_cells

                cells = dims * band_cells(n, m, window=window, band=band)
            else:  # euclidean: linear, no lattice
                cells = min(n, m)
            cells = max(1, cells)
            cache[key] = cells
        return cells

    return cost


def split_result(result: object) -> Tuple[float, int, object]:
    """Uniform ``(distance, cells, path)`` view of any measure's result.

    Accepts both the rich result objects (``DtwResult``,
    ``FastDtwResult``) and the bare float Euclidean returns.
    """
    if isinstance(result, float):
        return result, 0, None
    return (
        result.distance,
        getattr(result, "cells", 0),
        getattr(result, "path", None),
    )
