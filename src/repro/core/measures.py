"""The canonical measure registry and its pairwise dispatch.

Every subsystem that loops over "all the measures the paper compares"
-- the all-pairs matrix, 1-NN classification, the batch engine, the
CLI -- must agree on what those measures are.  Historically
:mod:`repro.core.matrix` and :mod:`repro.classify.knn` each kept their
own tuple and they drifted (``"fastdtw_reference"`` existed in one but
not the other).  This module is now the single source of truth: the
:data:`MEASURES` tuple plus :func:`measure_fn`, the one place a measure
name is turned into a pairwise distance callable.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from .cdtw import cdtw
from .cost import CostLike
from .dtw import dtw
from .euclidean import euclidean
from .fastdtw import fastdtw
from .fastdtw_reference import fastdtw_reference

#: The canonical registry: every pairwise measure the package compares.
MEASURES = (
    "dtw", "cdtw", "fastdtw", "fastdtw_reference", "euclidean",
    "rle_dtw", "rle_cdtw",
)

#: Measures whose results carry DP-cell provenance (Euclidean is O(n),
#: no lattice, and always reports zero cells).
CELL_COUNTED_MEASURES = (
    "dtw", "cdtw", "fastdtw", "fastdtw_reference", "rle_dtw", "rle_cdtw",
)

#: The compressed-domain exact measures (run-length encoded input).
RLE_MEASURES = ("rle_dtw", "rle_cdtw")

PairwiseFn = Callable[[Sequence[float], Sequence[float]], object]


def validate_measure(measure: str) -> None:
    """Raise ``ValueError`` unless ``measure`` is in :data:`MEASURES`."""
    if measure not in MEASURES:
        raise ValueError(f"unknown measure {measure!r}; pick from {MEASURES}")


def measure_fn(
    measure: str,
    window: Optional[float] = None,
    band: Optional[int] = None,
    radius: int = 1,
    cost: CostLike = "squared",
    return_path: bool = False,
    backend: Optional[str] = None,
) -> PairwiseFn:
    """Build the pairwise callable for one measure configuration.

    Parameters
    ----------
    measure:
        One of :data:`MEASURES`.
    window, band:
        cDTW constraint (exactly one, for ``measure="cdtw"`` and
        ``measure="rle_cdtw"``).
    radius:
        FastDTW radius (for the fastdtw measures).
    cost:
        Local cost name or callable.
    return_path:
        Ask the exact measures to also recover the warping path (the
        fastdtw measures always return one; Euclidean has none).
    backend:
        Kernel backend for the exact DP measures (``"dtw"``/``"cdtw"``
        and the rle measures),
        resolved via :func:`repro.core.kernels.resolve_backend`
        (``None`` = the process default).  The fastdtw measures and
        Euclidean always run their reference implementations; the
        ``"numpy"`` backend returns bit-identical distances, cells and
        paths but requires a named ``cost``.

    Returns
    -------
    PairwiseFn
        ``fn(x, y)`` returning a result object (or a bare float for
        ``"euclidean"``); unwrap uniformly with :func:`split_result`.
    """
    validate_measure(measure)
    from .kernels import resolve_backend

    resolved = resolve_backend(backend)
    if measure in RLE_MEASURES:
        from .rle import rle_cdtw, rle_dtw

        if measure == "rle_dtw":
            return lambda x, y: rle_dtw(
                x, y, cost=cost, return_path=return_path, backend=resolved
            )
        if (window is None) == (band is None):
            raise ValueError("specify exactly one of window= or band=")
        return lambda x, y: rle_cdtw(
            x, y, window=window, band=band, cost=cost,
            return_path=return_path, backend=resolved,
        )
    if resolved != "python" and measure in ("dtw", "cdtw"):
        return _kernel_measure_fn(
            measure, resolved, window, band, cost, return_path
        )
    if measure == "dtw":
        return lambda x, y: dtw(x, y, cost=cost, return_path=return_path)
    if measure == "cdtw":
        return lambda x, y: cdtw(
            x, y, window=window, band=band, cost=cost,
            return_path=return_path,
        )
    if measure == "fastdtw":
        return lambda x, y: fastdtw(x, y, radius=radius, cost=cost)
    if measure == "fastdtw_reference":
        return lambda x, y: fastdtw_reference(x, y, radius=radius, cost=cost)
    return lambda x, y: euclidean(x, y, cost=cost)


def _kernel_measure_fn(
    measure: str,
    backend: str,
    window: Optional[float],
    band: Optional[int],
    cost: CostLike,
    return_path: bool,
) -> PairwiseFn:
    """The dtw/cdtw callable routed through a non-default kernel set.

    Mirrors :func:`repro.core.dtw.dtw` / :func:`repro.core.cdtw.cdtw`
    exactly (same validation, same window construction) but evaluates
    the DP with the chosen backend's kernels; windows are memoised
    because construction is O(n) Python, which shows once the DP runs
    at kernel speed.
    """
    from .kernels import (
        banded_window,
        fraction_window,
        full_window,
        get_kernels,
    )
    from .validate import validate_pair

    kernels = get_kernels(backend)
    if measure == "dtw":
        def full_fn(x, y):
            validate_pair(x, y)
            win = full_window(len(x), len(y))
            return kernels.dtw(
                x, y, win, cost=cost, return_path=return_path
            )
        return full_fn

    if (window is None) == (band is None):
        raise ValueError("specify exactly one of window= or band=")

    def banded_fn(x, y):
        validate_pair(x, y)
        n, m = len(x), len(y)
        if window is not None:
            win = fraction_window(n, m, window)
        else:
            win = banded_window(n, m, band)
        return kernels.dtw(x, y, win, cost=cost, return_path=return_path)
    return banded_fn


def pair_cost_model(
    measure: str,
    lengths: Sequence[int],
    window: Optional[float] = None,
    band: Optional[int] = None,
    radius: int = 1,
    run_counts: Optional[Sequence[int]] = None,
) -> Callable[[int, int], int]:
    """Per-pair predicted DP-cell cost function for one measure spec.

    This is the scheduler's cost model, kept beside the measure
    registry so a measure cannot exist without a declared price:
    unknown measures raise instead of silently falling back to a wrong
    model (the bug the old hardcoded dtw/cdtw/fastdtw branch had).

    Prices per pair ``(i, j)`` with ``n = lengths[i]``,
    ``m = lengths[j]``:

    * ``dtw`` -- ``n * m`` (the full lattice, exact);
    * ``cdtw`` -- :func:`repro.core.cdtw.band_cells` (exact window
      geometry, corner clipping included);
    * ``fastdtw``/``fastdtw_reference`` -- Salvador & Chan's own
      ``N * (8r + 14)`` accounting;
    * ``euclidean`` -- ``min(n, m)`` (one cell-equivalent per sample);
    * ``rle_dtw``/``rle_cdtw`` -- ``k*m + l*n`` with ``k``/``l`` the
      run counts from ``run_counts`` (required for these measures;
      the exact boundary-cell count of the block DP).

    Costs are memoized per shape, so planning a large batch over
    equal-length series prices each shape once.
    """
    validate_measure(measure)
    if measure in RLE_MEASURES and run_counts is None:
        raise ValueError(
            f"measure {measure!r} needs run_counts= to be priced "
            "(the k*m + l*n cost model)"
        )
    cache: dict = {}

    def cost(i: int, j: int) -> int:
        n, m = lengths[i], lengths[j]
        if measure in RLE_MEASURES:
            key = (n, m, run_counts[i], run_counts[j])
        else:
            key = (n, m)
        cells = cache.get(key)
        if cells is None:
            if measure == "dtw":
                cells = n * m
            elif measure == "cdtw":
                from .cdtw import band_cells

                cells = band_cells(n, m, window=window, band=band)
            elif measure in ("fastdtw", "fastdtw_reference"):
                from ..timing.cells import fastdtw_cell_model

                cells = fastdtw_cell_model(max(n, m), radius)
            elif measure in RLE_MEASURES:
                k, l = run_counts[i], run_counts[j]
                cells = k * m + l * n
            else:  # euclidean: linear, no lattice
                cells = min(n, m)
            cells = max(1, cells)
            cache[key] = cells
        return cells

    return cost


def split_result(result: object) -> Tuple[float, int, object]:
    """Uniform ``(distance, cells, path)`` view of any measure's result.

    Accepts both the rich result objects (``DtwResult``,
    ``FastDtwResult``) and the bare float Euclidean returns.
    """
    if isinstance(result, float):
        return result, 0, None
    return (
        result.distance,
        getattr(result, "cells", 0),
        getattr(result, "path", None),
    )
