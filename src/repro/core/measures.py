"""The canonical measure registry and its pairwise dispatch.

Every subsystem that loops over "all the measures the paper compares"
-- the all-pairs matrix, 1-NN classification, the batch engine, the
CLI -- must agree on what those measures are.  Historically
:mod:`repro.core.matrix` and :mod:`repro.classify.knn` each kept their
own tuple and they drifted (``"fastdtw_reference"`` existed in one but
not the other).  This module is now the single source of truth: the
:data:`MEASURES` tuple plus :func:`measure_fn`, the one place a measure
name is turned into a pairwise distance callable.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from .cdtw import cdtw
from .cost import CostLike
from .dtw import dtw
from .euclidean import euclidean
from .fastdtw import fastdtw
from .fastdtw_reference import fastdtw_reference

#: The canonical registry: every pairwise measure the package compares.
MEASURES = ("dtw", "cdtw", "fastdtw", "fastdtw_reference", "euclidean")

#: Measures whose results carry DP-cell provenance (Euclidean is O(n),
#: no lattice, and always reports zero cells).
CELL_COUNTED_MEASURES = ("dtw", "cdtw", "fastdtw", "fastdtw_reference")

PairwiseFn = Callable[[Sequence[float], Sequence[float]], object]


def validate_measure(measure: str) -> None:
    """Raise ``ValueError`` unless ``measure`` is in :data:`MEASURES`."""
    if measure not in MEASURES:
        raise ValueError(f"unknown measure {measure!r}; pick from {MEASURES}")


def measure_fn(
    measure: str,
    window: Optional[float] = None,
    band: Optional[int] = None,
    radius: int = 1,
    cost: CostLike = "squared",
    return_path: bool = False,
    backend: Optional[str] = None,
) -> PairwiseFn:
    """Build the pairwise callable for one measure configuration.

    Parameters
    ----------
    measure:
        One of :data:`MEASURES`.
    window, band:
        cDTW constraint (exactly one, for ``measure="cdtw"``).
    radius:
        FastDTW radius (for the fastdtw measures).
    cost:
        Local cost name or callable.
    return_path:
        Ask the exact measures to also recover the warping path (the
        fastdtw measures always return one; Euclidean has none).
    backend:
        Kernel backend for the exact DP measures (``"dtw"``/``"cdtw"``),
        resolved via :func:`repro.core.kernels.resolve_backend`
        (``None`` = the process default).  The fastdtw measures and
        Euclidean always run their reference implementations; the
        ``"numpy"`` backend returns bit-identical distances, cells and
        paths but requires a named ``cost``.

    Returns
    -------
    PairwiseFn
        ``fn(x, y)`` returning a result object (or a bare float for
        ``"euclidean"``); unwrap uniformly with :func:`split_result`.
    """
    validate_measure(measure)
    from .kernels import resolve_backend

    resolved = resolve_backend(backend)
    if resolved != "python" and measure in ("dtw", "cdtw"):
        return _kernel_measure_fn(
            measure, resolved, window, band, cost, return_path
        )
    if measure == "dtw":
        return lambda x, y: dtw(x, y, cost=cost, return_path=return_path)
    if measure == "cdtw":
        return lambda x, y: cdtw(
            x, y, window=window, band=band, cost=cost,
            return_path=return_path,
        )
    if measure == "fastdtw":
        return lambda x, y: fastdtw(x, y, radius=radius, cost=cost)
    if measure == "fastdtw_reference":
        return lambda x, y: fastdtw_reference(x, y, radius=radius, cost=cost)
    return lambda x, y: euclidean(x, y, cost=cost)


def _kernel_measure_fn(
    measure: str,
    backend: str,
    window: Optional[float],
    band: Optional[int],
    cost: CostLike,
    return_path: bool,
) -> PairwiseFn:
    """The dtw/cdtw callable routed through a non-default kernel set.

    Mirrors :func:`repro.core.dtw.dtw` / :func:`repro.core.cdtw.cdtw`
    exactly (same validation, same window construction) but evaluates
    the DP with the chosen backend's kernels; windows are memoised
    because construction is O(n) Python, which shows once the DP runs
    at kernel speed.
    """
    from .kernels import (
        banded_window,
        fraction_window,
        full_window,
        get_kernels,
    )
    from .validate import validate_pair

    kernels = get_kernels(backend)
    if measure == "dtw":
        def full_fn(x, y):
            validate_pair(x, y)
            win = full_window(len(x), len(y))
            return kernels.dtw(
                x, y, win, cost=cost, return_path=return_path
            )
        return full_fn

    if (window is None) == (band is None):
        raise ValueError("specify exactly one of window= or band=")

    def banded_fn(x, y):
        validate_pair(x, y)
        n, m = len(x), len(y)
        if window is not None:
            win = fraction_window(n, m, window)
        else:
            win = banded_window(n, m, band)
        return kernels.dtw(x, y, win, cost=cost, return_path=return_path)
    return banded_fn


def split_result(result: object) -> Tuple[float, int, object]:
    """Uniform ``(distance, cells, path)`` view of any measure's result.

    Accepts both the rich result objects (``DtwResult``,
    ``FastDtwResult``) and the bare float Euclidean returns.
    """
    if isinstance(result, float):
        return result, 0, None
    return (
        result.distance,
        getattr(result, "cells", 0),
        getattr(result, "path", None),
    )
