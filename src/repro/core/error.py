"""The approximation-error metric from the original FastDTW paper.

Salvador & Chan score an approximation against the exact distance as

    error = (approx - exact) / exact

reported as a percentage.  The paper under reproduction uses this
metric to report the Appendix A adversarial pair's error of 156,100%
(FastDTW_20 distance 31.24 vs Full DTW distance 0.020).
"""

from __future__ import annotations

from math import inf, isnan


def approximation_error(approx: float, exact: float) -> float:
    """Relative approximation error ``(approx - exact) / exact``.

    Returns ``0.0`` when both are zero (a perfect approximation of a
    perfect match) and ``inf`` when only the exact distance is zero.

    Raises
    ------
    ValueError
        If either operand is negative or NaN -- distances cannot be.
    """
    for name, v in (("approx", approx), ("exact", exact)):
        if isnan(v):
            raise ValueError(f"{name} distance is NaN")
        if v < 0:
            raise ValueError(f"{name} distance is negative: {v}")
    if exact == 0.0:
        return 0.0 if approx == 0.0 else inf
    return (approx - exact) / exact


def approximation_error_percent(approx: float, exact: float) -> float:
    """:func:`approximation_error` expressed as a percentage.

    >>> round(approximation_error_percent(31.24, 0.020))
    156100
    """
    return approximation_error(approx, exact) * 100.0
