"""Warping paths: the alignment objects produced by every DTW variant.

A warping path between series ``x`` (length ``n``) and ``y`` (length
``m``) is a sequence of lattice cells ``(i, j)`` that

* starts at ``(0, 0)`` and ends at ``(n - 1, m - 1)`` (boundary),
* is non-decreasing in both coordinates (monotonicity), and
* advances each coordinate by at most one per step (continuity).

:class:`WarpingPath` is an immutable value type wrapping such a
sequence.  Besides validation it offers the operations the paper's
experiments need:

* :meth:`cost` -- re-evaluate the path's accumulated cost on any pair of
  series (used to verify DP outputs and to score FastDTW's approximate
  path against the exact optimum);
* :meth:`max_band_deviation` -- the largest distance of any cell from
  the lattice diagonal, i.e. the *measured* amount of warping ``W``
  that Section 2 of the paper defines (used by the case advisor);
* :meth:`project_up` -- double the resolution of a path, the projection
  step at the heart of FastDTW;
* :meth:`warp_direction` -- which side of the diagonal the alignment
  bulges to, used by the Appendix A "wrong-way warping" experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from .cost import CostLike, resolve_cost

Cell = Tuple[int, int]


class InvalidPathError(ValueError):
    """Raised when a cell sequence violates the warping-path axioms."""


@dataclass(frozen=True)
class WarpingPath:
    """An immutable, validated warping path.

    Parameters
    ----------
    cells:
        The path cells, first-to-last.  Validated on construction.

    Raises
    ------
    InvalidPathError
        If the cells are empty, do not start at ``(0, 0)``, move
        backwards, or skip cells.
    """

    cells: Tuple[Cell, ...]

    def __init__(self, cells: Iterable[Cell]):
        cells = tuple((int(i), int(j)) for i, j in cells)
        _validate(cells)
        object.__setattr__(self, "cells", cells)

    # -- basic container protocol -------------------------------------

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    def __getitem__(self, idx: int) -> Cell:
        return self.cells[idx]

    # -- shape ---------------------------------------------------------

    @property
    def n(self) -> int:
        """Length of the row series this path aligns (``i`` extent)."""
        return self.cells[-1][0] + 1

    @property
    def m(self) -> int:
        """Length of the column series this path aligns (``j`` extent)."""
        return self.cells[-1][1] + 1

    # -- evaluation ------------------------------------------------------

    def cost(
        self,
        x: Sequence[float],
        y: Sequence[float],
        cost: CostLike = "squared",
    ) -> float:
        """Accumulated local cost of this path over ``(x, y)``.

        The series lengths must match the path's end cell.  The value of
        ``path.cost(x, y)`` for a DP-optimal path equals the DTW
        distance, which the test-suite uses as a cross-check on every
        implementation.
        """
        if len(x) != self.n or len(y) != self.m:
            raise ValueError(
                f"path aligns series of lengths ({self.n}, {self.m}), "
                f"got ({len(x)}, {len(y)})"
            )
        fn = resolve_cost(cost)
        return sum(fn(x[i], y[j]) for i, j in self.cells)

    def max_band_deviation(self) -> int:
        """Largest deviation of the path from the lattice diagonal, in cells.

        For equal-length series this is ``max |i - j|``.  For unequal
        lengths the diagonal is slope-corrected (the line from
        ``(0, 0)`` to ``(n-1, m-1)``).  Dividing by ``N`` gives the
        paper's empirical warping amount ``W``.
        """
        n, m = self.n, self.m
        if n == 1 or m == 1:
            return max(m - 1, n - 1) if (n > 1 or m > 1) else 0
        slope = (m - 1) / (n - 1)
        dev = 0.0
        for i, j in self.cells:
            d = abs(j - i * slope)
            if d > dev:
                dev = d
        return int(round(dev))

    def warp_fraction(self) -> float:
        """:meth:`max_band_deviation` as a fraction of ``max(n, m)``.

        This is the paper's ``W`` measured from an actual alignment,
        e.g. ``0.34`` for the Fig. 3 power-demand pair.
        """
        return self.max_band_deviation() / max(self.n, self.m)

    def warp_direction(self) -> int:
        """Which side of the diagonal the alignment bulges towards.

        Returns ``+1`` if the path spends more area above the
        (slope-corrected) diagonal (``j`` runs ahead of ``i``), ``-1``
        if below, and ``0`` for a balanced or perfectly diagonal path.
        Appendix A's failure mode is the PAA-coarsened pair warping in
        the *opposite* direction to the raw pair.
        """
        n, m = self.n, self.m
        slope = (m - 1) / (n - 1) if n > 1 else 1.0
        area = sum(j - i * slope for i, j in self.cells)
        if area > 1e-9:
            return 1
        if area < -1e-9:
            return -1
        return 0

    # -- resolution arithmetic (FastDTW) ----------------------------------

    def project_up(self, n: int, m: int) -> Tuple[Cell, ...]:
        """Project this path one resolution level up (2x), FastDTW-style.

        Each low-resolution cell ``(i, j)`` covers the four
        high-resolution cells ``(2i, 2j) .. (2i+1, 2j+1)``.  Cells
        beyond the bounds of the finer lattice (``n`` rows, ``m``
        columns) are clipped away, which handles odd lengths whose
        dangling sample was dropped during coarsening.

        Returns the projected cells in lattice order (not itself a
        valid :class:`WarpingPath`; it is a *region*, consumed by
        :meth:`repro.core.window.Window.from_cells`).
        """
        out = []
        for i, j in self.cells:
            for di in (0, 1):
                ii = 2 * i + di
                if ii >= n:
                    continue
                for dj in (0, 1):
                    jj = 2 * j + dj
                    if jj < m:
                        out.append((ii, jj))
        return tuple(out)

    def to_pairs(self) -> Tuple[Cell, ...]:
        """The raw cell tuple (alias of :attr:`cells`)."""
        return self.cells

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WarpingPath(len={len(self.cells)}, "
            f"shape=({self.n}, {self.m}), "
            f"deviation={self.max_band_deviation()})"
        )


def _validate(cells: Tuple[Cell, ...]) -> None:
    if not cells:
        raise InvalidPathError("a warping path must contain at least one cell")
    if cells[0] != (0, 0):
        raise InvalidPathError(f"path must start at (0, 0), got {cells[0]}")
    for (pi, pj), (ci, cj) in zip(cells, cells[1:]):
        di, dj = ci - pi, cj - pj
        if di < 0 or dj < 0:
            raise InvalidPathError(
                f"path moves backwards from ({pi}, {pj}) to ({ci}, {cj})"
            )
        if di > 1 or dj > 1:
            raise InvalidPathError(
                f"path skips cells between ({pi}, {pj}) and ({ci}, {cj})"
            )
        if di == 0 and dj == 0:
            raise InvalidPathError(f"path repeats cell ({ci}, {cj})")


def diagonal_path(n: int, m: int) -> WarpingPath:
    """The maximally diagonal path through an ``n x m`` lattice.

    For ``n == m`` this is the identity alignment (what ``band=0``
    cDTW, i.e. the Euclidean distance, uses).  For unequal lengths the
    path hugs the slope-corrected diagonal as closely as continuity
    allows.
    """
    if n < 1 or m < 1:
        raise ValueError("series must be non-empty")
    cells = [(0, 0)]
    i = j = 0
    while (i, j) != (n - 1, m - 1):
        step_i = i < n - 1
        step_j = j < m - 1
        if step_i and step_j:
            i += 1
            j += 1
        elif step_i:
            i += 1
        else:
            j += 1
        cells.append((i, j))
    return WarpingPath(cells)
