"""The windowed dynamic-programming engine behind every DTW variant.

Full DTW, banded cDTW and FastDTW's refinement step are all the same
computation: a DP over some :class:`~repro.core.window.Window` of the
``n x m`` lattice with the recurrence

    D(i, j) = cost(x[i], y[j]) + min(D(i-1, j-1), D(i-1, j), D(i, j-1))

(the paper's Section 2 recurrence, with the standard three-way ``min``).
This module implements that DP once, in pure Python, with:

* per-row ``(lo, hi)`` ranges so only admitted cells are touched,
* inlined ``squared`` / ``abs`` local costs (callables also accepted),
* optional path recovery by backtracking over retained rows,
* optional early abandoning against a threshold (used by
  :mod:`repro.search`), and
* an exact count of evaluated cells, the benchmarks' cost model.

The engine is deliberately *not* NumPy-vectorised: the paper's central
experiment requires cDTW and FastDTW "implemented in the same language,
running on the same hardware", and both call into this one function.
A NumPy cross-check lives in :mod:`repro.core.numpy_backend`.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf, sqrt as _sqrt
from typing import List, Optional, Sequence, Tuple

from ..obs import trace as _obs
from .cost import CostLike, cost_name, resolve_cost
from .path import WarpingPath
from .window import Window


@dataclass(frozen=True)
class DtwResult:
    """Outcome of one DTW computation.

    Attributes
    ----------
    distance:
        Accumulated local cost along the optimal admitted path, or
        ``inf`` if the computation was abandoned early.
    path:
        The optimal path, when requested, else ``None``.
    cells:
        Number of lattice cells the DP evaluated -- the paper's
        hardware-independent cost measure.
    cost:
        Name of the local cost function used.
    abandoned:
        ``True`` if early abandoning cut the computation short (in
        which case ``distance`` is ``inf`` and only a lower bound on
        the true distance was established).
    """

    distance: float
    path: Optional[WarpingPath]
    cells: int
    cost: str
    abandoned: bool = False

    def root(self) -> float:
        """``sqrt(distance)`` -- the L2-style distance convention.

        Only meaningful for the ``squared`` local cost, under which
        ``cdtw(x, y, band=0).root()`` equals the Euclidean norm
        ``||x - y||``.
        """
        return _sqrt(self.distance)


def dp_over_window(
    x: Sequence[float],
    y: Sequence[float],
    window: Window,
    cost: CostLike = "squared",
    return_path: bool = False,
    abandon_above: Optional[float] = None,
    suffix_bound: Optional[Sequence[float]] = None,
) -> DtwResult:
    """Run the DTW recurrence over ``window`` and return the result.

    Parameters
    ----------
    x, y:
        The two series; ``len(x) == window.n`` and
        ``len(y) == window.m`` are required.
    window:
        The admitted lattice region.
    cost:
        Local cost: ``"squared"`` (default), ``"abs"`` or a callable.
    return_path:
        If true, retain all DP rows and backtrack the optimal path
        (memory O(cells) instead of O(width)).
    abandon_above:
        If given, stop as soon as every cell of the current row exceeds
        this threshold; the result then has ``abandoned=True`` and
        ``distance=inf``.  Valid because costs are non-negative, so row
        minima are monotonically non-decreasing lower bounds on the
        final distance.
    suffix_bound:
        Optional length-``n`` array where ``suffix_bound[i]`` lower-
        bounds the cost any path must still accumulate in rows
        ``i+1 .. n-1`` (e.g. per-row LB_Keogh gap costs summed from the
        tail -- the UCR suite's cumulative-bound trick).  Combined with
        ``abandon_above``, abandoning happens as soon as
        ``min(row) + suffix_bound[i] > abandon_above``, typically much
        earlier than with the row minimum alone.  The caller is
        responsible for the bound's validity for the given window.

    Raises
    ------
    ValueError
        If series lengths disagree with the window, or a series is
        empty.
    """
    trace = _obs._ACTIVE
    if trace is None:
        return _dp_over_window(
            x, y, window, cost, return_path, abandon_above, suffix_bound
        )
    with _obs.span("dp"):
        result = _dp_over_window(
            x, y, window, cost, return_path, abandon_above, suffix_bound
        )
    _obs.record_dp(trace, result)
    return result


def _dp_over_window(
    x: Sequence[float],
    y: Sequence[float],
    window: Window,
    cost: CostLike,
    return_path: bool,
    abandon_above: Optional[float],
    suffix_bound: Optional[Sequence[float]],
) -> DtwResult:
    """The raw DP, free of observability hooks.

    :func:`dp_over_window` is a thin wrapper that adds the
    :mod:`repro.obs` counters and span when a trace is active; this
    function is also the baseline the trace-overhead guard
    (:mod:`repro.obs.bench`) times the wrapper against.
    """
    n, m = len(x), len(y)
    if n == 0 or m == 0:
        raise ValueError("cannot warp empty series")
    if (n, m) != (window.n, window.m):
        raise ValueError(
            f"window is {window.n}x{window.m} but series are {n}x{m}"
        )

    named = cost if isinstance(cost, str) else None
    cost_fn = None if named in ("squared", "abs") else resolve_cost(cost)

    ranges = window.ranges
    cells = 0
    rows: List[List[float]] = []  # retained only when return_path

    prev: List[float] = []
    prev_lo = prev_hi = 0
    abandoned = False

    for i in range(n):
        lo, hi = ranges[i]
        width = hi - lo + 1
        cur = [inf] * width
        xi = x[i]
        cells += width

        for j in range(lo, hi + 1):
            if named == "squared":
                d = xi - y[j]
                local = d * d
            elif named == "abs":
                local = abs(xi - y[j])
            else:
                local = cost_fn(xi, y[j])

            if i == 0:
                if j == 0:
                    best = 0.0
                else:
                    best = cur[j - 1 - lo]  # horizontal only on row 0
            else:
                best = inf
                jj = j - 1
                if prev_lo <= jj <= prev_hi:  # diagonal
                    v = prev[jj - prev_lo]
                    if v < best:
                        best = v
                if prev_lo <= j <= prev_hi:  # vertical
                    v = prev[j - prev_lo]
                    if v < best:
                        best = v
                if j > lo:  # horizontal
                    v = cur[j - 1 - lo]
                    if v < best:
                        best = v
            cur[j - lo] = local + best

        if abandon_above is not None:
            floor = min(cur)
            if suffix_bound is not None:
                floor += suffix_bound[i]
            if floor > abandon_above:
                abandoned = True
                break

        if return_path:
            rows.append(cur)
        prev, prev_lo, prev_hi = cur, lo, hi

    if abandoned:
        return DtwResult(inf, None, cells, cost_name(cost), abandoned=True)

    distance = prev[m - 1 - prev_lo]
    path = _backtrack(rows, ranges) if return_path else None
    return DtwResult(distance, path, cells, cost_name(cost))


def _backtrack(
    rows: List[List[float]], ranges: Tuple[Tuple[int, int], ...]
) -> WarpingPath:
    """Recover the optimal path from retained DP rows.

    Ties are broken in favour of the diagonal move, which yields the
    shortest (and most intuitive) of the optimal paths.
    """
    n = len(rows)
    i = n - 1
    j = ranges[i][1]
    cells = [(i, j)]
    while i > 0 or j > 0:
        if i == 0:
            j -= 1
        else:
            plo, phi = ranges[i - 1]
            lo, _hi = ranges[i]
            diag = rows[i - 1][j - 1 - plo] if plo <= j - 1 <= phi else inf
            vert = rows[i - 1][j - plo] if plo <= j <= phi else inf
            horz = rows[i][j - 1 - lo] if j - 1 >= lo else inf
            best = min(diag, vert, horz)
            if best == inf:
                raise RuntimeError("backtracking escaped the window")
            if diag == best:
                i, j = i - 1, j - 1
            elif vert == best:
                i -= 1
            else:
                j -= 1
        cells.append((i, j))
    cells.reverse()
    return WarpingPath(cells)
