"""When FastDTW fails: the Appendix A adversarial pair, dissected.

Walks through the paper's Table 2 / Fig. 7 / Fig. 8 story: two series
that Full DTW finds nearly identical but FastDTW_20 places far apart, a
clustering that silently flips as a result, and the wrong-way-warping
mechanism that causes it -- including how the error responds to the
radius.

Run:  python examples/fastdtw_failure.py
"""

from repro import dtw, fastdtw
from repro.core import approximation_error_percent, paa_factor
from repro.datasets import adversarial_pair, deviation_at_row
from repro.experiments import fig7_adversarial


def main() -> None:
    triple = adversarial_pair()
    a, b = triple.a, triple.b

    # -- the headline numbers (Table 2) --------------------------------------
    exact = dtw(a, b, return_path=True)
    approx = fastdtw(a, b, radius=20)
    err = approximation_error_percent(approx.distance, exact.distance)
    print(f"Full DTW(A, B)   = {exact.distance:.4f}")
    print(f"FastDTW_20(A, B) = {approx.distance:.4f}")
    print(f"approximation error: {err:,.0f}%  (paper: 156,100%)\n")

    # -- the mechanism (Fig. 8) -----------------------------------------------
    row = triple.doublet_a
    raw_dev = deviation_at_row(exact.path, row)
    coarse = dtw(paa_factor(a, 8), paa_factor(b, 8), return_path=True)
    coarse_dev = deviation_at_row(coarse.path, row // 8)
    print(f"the dominant feature moved {triple.doublet_shift:+d} samples; "
          f"the raw optimal path follows it ({raw_dev:+.0f})")
    print(f"after 8-to-1 PAA the decoy dominates and the path goes the "
          f"other way ({coarse_dev:+.0f}) -- FastDTW inherits this and its "
          f"radius-20 window can never reach back {triple.doublet_shift} "
          "cells.\n")

    # -- how much radius would it take? ---------------------------------------
    print("radius vs error (the 'accuracy knob' does not save you until it "
          "covers the full shift):")
    for radius in (1, 5, 10, 20, 30, 32, 40):
        d = fastdtw(a, b, radius=radius)
        e = approximation_error_percent(d.distance, exact.distance)
        print(f"  r={radius:>2}: distance {d.distance:>8.4f}  "
              f"error {e:>12,.0f}%  cells {d.cells:>7}")

    # -- the clustering consequence (Fig. 7) -----------------------------------
    print("\nfull Fig. 7 report:")
    print(fig7_adversarial.format_report(fig7_adversarial.run()))


if __name__ == "__main__":
    main()
