"""Quickstart: the repro public API in five minutes.

Covers the package's central objects -- exact DTW/cDTW, FastDTW, warping
paths, windows, and the cost accounting the paper's argument rests on.

Run:  python examples/quickstart.py
"""

from repro import cdtw, dtw, euclidean, fastdtw
from repro.core import Window, approximation_error_percent
from repro.datasets import random_walk


def main() -> None:
    x = random_walk(200, seed=1)
    y = random_walk(200, seed=2)

    # -- exact distances ---------------------------------------------------
    full = dtw(x, y, return_path=True)
    banded = cdtw(x, y, window=0.10)          # the paper's cDTW_10
    locked = euclidean(x, y)                  # == cdtw(..., window=0)

    print("Full DTW distance :", round(full.distance, 3))
    print("cDTW_10 distance  :", round(banded.distance, 3))
    print("Euclidean distance:", round(locked, 3))
    assert full.distance <= banded.distance <= locked

    # -- the warping path ---------------------------------------------------
    path = full.path
    print(f"optimal path: {len(path)} cells, "
          f"max deviation {path.max_band_deviation()} cells "
          f"(W = {path.warp_fraction():.1%})")

    # -- the approximation ---------------------------------------------------
    approx = fastdtw(x, y, radius=5)
    err = approximation_error_percent(approx.distance, full.distance)
    print(f"FastDTW_5 distance: {approx.distance:.3f} "
          f"(error {err:.1f}% vs exact)")

    # -- the paper's cost model: cells evaluated ----------------------------
    print("\nwork done (DP lattice cells):")
    print(f"  cDTW_10  : {banded.cells:>8} cells")
    print(f"  FastDTW_5: {approx.cells:>8} cells "
          "(all recursion levels)")
    print(f"  Full DTW : {full.cells:>8} cells")

    # -- windows are first-class ---------------------------------------------
    w = Window.band(len(x), len(y), band=20)
    print(f"\na 20-cell Sakoe-Chiba band covers {w.coverage():.0%} "
          f"of the {len(x)}x{len(y)} lattice")

    print("\nthe paper in one line: for every realistic (N, w), the "
          "cDTW cell count above is the smaller one.")


if __name__ == "__main__":
    main()
