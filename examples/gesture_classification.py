"""Gesture classification: the paper's Case A, end to end.

Builds a synthetic gesture dataset (the UWave stand-in), finds the
LOOCV-optimal warping window by brute force (how the UCR archive's
"best w" values were produced), then classifies a held-out test set
under Euclidean, cDTW at the optimal window, Full DTW and FastDTW --
reporting both accuracy and the work done, the two axes of the paper's
argument.

Run:  python examples/gesture_classification.py
"""

import time

from repro.classify import DistanceSpec, OneNearestNeighbor, best_window_search
from repro.datasets import gesture_dataset


def main() -> None:
    data = gesture_dataset(
        n_classes=5, per_class=8, length=128,
        warp_fraction=0.06, noise_sigma=0.3, seed=11,
    )
    train, test = data.split(train_fraction=0.6, seed=11)
    print(f"dataset: {len(train)} train / {len(test)} test, "
          f"N={data.length}, {len(data.classes)} classes")

    # -- step 1: find the best window on the train split ------------------
    search = best_window_search(
        [list(s) for s in train.series], list(train.labels),
        windows=[w / 100 for w in range(0, 21, 2)],
    )
    print(f"\nLOOCV-optimal window: {search.best_window:.0%} "
          f"(error {search.best_error:.2%})")
    for w, e in search.errors:
        print(f"  w={w:>4.0%}  loocv error={e:.2%}")

    # -- step 2: head-to-head on the test split ----------------------------
    specs = (
        DistanceSpec("euclidean"),
        DistanceSpec("cdtw", window=search.best_window,
                     use_lower_bounds=True),
        DistanceSpec("dtw"),
        DistanceSpec("fastdtw", radius=10),
    )
    print(f"\n{'distance':>14}  {'error':>7}  {'time':>8}")
    for spec in specs:
        clf = OneNearestNeighbor(spec).fit(
            [list(s) for s in train.series], list(train.labels)
        )
        start = time.perf_counter()
        err = clf.error_rate(
            [list(s) for s in test.series], list(test.labels)
        )
        elapsed = time.perf_counter() - start
        print(f"{spec.describe():>14}  {err:>7.2%}  {elapsed:>7.2f}s")

    print("\nthe paper's Section 3.1: cDTW at the optimal window is both "
          "the most accurate and faster than any FastDTW.")


if __name__ == "__main__":
    main()
