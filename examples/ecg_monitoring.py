"""Subsequence search over an ECG stream: the repeated-use machinery.

The paper's footnotes contrast FastDTW with the UCR-suite style of
exact search: lower bounding plus early abandoning let exact cDTW scan
enormous streams (a trillion subsequences in 1.4 days on 2012
hardware).  This example runs that machinery at desk scale: find a
query heartbeat inside a long synthetic ECG stream, and show how many
candidate windows the lossless cascade discarded without ever running
a full DTW.

Run:  python examples/ecg_monitoring.py
"""

import time

from repro.search import subsequence_search
from repro.datasets import ecg_stream
from repro.timing import extrapolate, seconds_to_human


def main() -> None:
    # a few minutes of synthetic ECG at modest rate
    stream = ecg_stream(120, mean_beat_samples=90, seed=42)
    print(f"stream: {len(stream)} samples (~{120} beats)")

    # the query: one beat lifted from the middle of the stream
    start_truth = 5_000
    query = stream[start_truth:start_truth + 90]

    t0 = time.perf_counter()
    match = subsequence_search(query, stream, band=4)
    elapsed = time.perf_counter() - t0

    print(f"\nbest match at offset {match.start} "
          f"(planted at {start_truth}), distance {match.distance:.4f}")
    print(f"searched {match.windows} windows in {elapsed:.2f} s")

    s = match.stats
    print("\nwhere the cascade stopped each candidate:")
    print(f"  LB_Kim (O(1)):        {s.pruned_kim}")
    print(f"  LB_Keogh (O(n)):      {s.pruned_keogh}")
    print(f"  reversed LB_Keogh:    {s.pruned_keogh_reversed}")
    print(f"  abandoned mid-DTW:    {s.abandoned_dtw}")
    print(f"  full DTW completed:   {s.full_dtw}")
    print(f"  -> prune rate {s.prune_rate():.1%}")

    # the footnote-2 style projection: what would a trillion windows cost?
    per_window = elapsed / match.windows
    trillion = extrapolate(per_window, 10**12)
    print(f"\nat this per-window rate, 10^12 windows would take "
          f"{seconds_to_human(trillion)} -- and this is pure Python "
          "with no indexing; the compiled UCR suite does it in days.")
    print("none of this machinery is available to FastDTW: its coarse "
          "levels provide no lower bound, so nothing can be pruned.")


if __name__ == "__main__":
    main()
