"""The Table 1 advisor: which DTW should *your* task use?

Classifies the paper's four canonical scenarios, then shows the
data-driven path: handing the advisor sample pairs and letting it
*measure* the warping amount W (the paper's Fig. 3 procedure) before
recommending.

Run:  python examples/case_advisor.py
"""

from repro.advisor import analyze, estimate_warping_amount
from repro.datasets import (
    fall_pair,
    heartbeat,
    midnight_hour_pair,
    studio_and_live,
)
from repro.datasets.warping import warp_series
import random


def main() -> None:
    # -- the four quadrants, by the numbers ----------------------------------
    print("the paper's canonical settings:\n")
    for label, n, w in (
        ("heartbeats (Case A)", 180, 0.05),
        ("music alignment (Case B)", 24_000, 0.0083),
        ("power demand (Case C)", 450, 0.40),
        ("contrived falls (Case D)", 2_000, 1.00),
    ):
        a = analyze(n=n, warping=w)
        print(f"--- {label}")
        print(a.describe(), "\n")

    # -- measuring W from data, per domain ------------------------------------
    print("=" * 60)
    print("measuring W from sample pairs (Full-DTW alignment):\n")
    rng = random.Random(5)

    beats = [heartbeat(180, random.Random(s)) for s in range(4)]
    w_ecg = estimate_warping_amount(
        [(beats[0], beats[1]), (beats[2], beats[3])]
    )
    print(f"  heartbeats:  measured W = {w_ecg:.1%} -> "
          f"Case {analyze(n=180, warping=w_ecg).case.value}")

    music = studio_and_live(seconds=20.0, max_drift_seconds=0.2, seed=1)
    w_music = estimate_warping_amount([(music.studio, music.live)])
    print(f"  music pair:  measured W = {w_music:.1%} -> "
          f"Case {analyze(n=24_000, warping=w_music).case.value}")

    power = midnight_hour_pair(seed=2)
    w_power = estimate_warping_amount([(power.night_a, power.night_b)])
    print(f"  power pair:  measured W = {w_power:.1%} -> "
          f"Case {analyze(n=450, warping=w_power).case.value}")

    falls = fall_pair(3.0, seed=3)
    w_falls = estimate_warping_amount([(falls.early, falls.late)])
    print(f"  fall pair:   measured W = {w_falls:.1%} -> "
          f"Case {analyze(n=2000, warping=w_falls).case.value}")

    print("\nin every case the recommendation is exact cDTW; only the "
          "no-known-application Case D even invites a tradeoff discussion.")


if __name__ == "__main__":
    main()
