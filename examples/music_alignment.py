"""Music score alignment: the paper's Case B (long N, narrow W).

Generates a studio "recording" and a live rendition that drifts by at
most two seconds, aligns them with cDTW at the drift-derived window
(w = 0.83%), verifies the alignment actually recovers the drift, and
times cDTW against FastDTW at two radii -- the paper's Section 3.2
experiment.

Run:  python examples/music_alignment.py
"""

import time

from repro import cdtw, fastdtw
from repro.advisor import analyze
from repro.datasets import studio_and_live


def main() -> None:
    # a scaled-down "Let It Be": one minute at 100 Hz (the paper's full
    # four-minute N=24,000 works too -- budget a few seconds per call)
    pair = studio_and_live(seconds=60.0, max_drift_seconds=0.5, seed=4)
    w = pair.window_fraction
    print(f"studio/live pair: N={pair.length}, drift <= "
          f"{pair.max_drift_seconds}s -> w={w:.2%}")

    # -- what does Table 1 say about this setting? -------------------------
    verdict = analyze(n=pair.length, warping=w)
    print(f"case advisor: Case {verdict.case.value} -> "
          f"{verdict.recommendation.value}")

    # -- align and check the drift is recovered -----------------------------
    result = cdtw(pair.studio, pair.live, window=w, return_path=True)
    deviation = result.path.max_band_deviation()
    print(f"\nalignment distance {result.distance:.2f}; "
          f"path deviates up to {deviation} samples "
          f"({deviation / pair.rate_hz:.2f}s of the {pair.max_drift_seconds}s"
          " drift budget)")

    # -- the paper's timing bullets -----------------------------------------
    def clock(label, fn):
        start = time.perf_counter()
        fn()
        print(f"  {label:<12} {1000 * (time.perf_counter() - start):8.1f} ms")

    print("\ntimings (paper: 45.6 ms / 238.2 ms / 350.9 ms at N=24,000):")
    clock(f"cDTW_{w:.2%}", lambda: cdtw(pair.studio, pair.live, window=w))
    clock("FastDTW_10", lambda: fastdtw(pair.studio, pair.live, radius=10))
    clock("FastDTW_40", lambda: fastdtw(pair.studio, pair.live, radius=40))

    print("\nexact cDTW wins, and a more accurate FastDTW (larger radius) "
          "only falls further behind.")


if __name__ == "__main__":
    main()
