"""Clustering power-demand nights: the paper's Case C data, put to work.

Generates a week of midnight-hour electricity traces -- some nights the
dishwasher ran (three heating peaks at shifting times), some nights it
did not -- measures the natural warping amount the way the paper does
(Fig. 3), consults the case advisor, and hierarchically clusters the
nights under cDTW at the advised window.  Dishwasher nights should fuse
into one subtree.

Run:  python examples/power_clustering.py
"""

from repro import cdtw
from repro.advisor import analyze
from repro.cluster import ClusterNode, linkage, render_ascii
from repro.datasets import estimate_warping, midnight_hour_pair
from repro.datasets.random_walk import random_walk


def main() -> None:
    # -- build a week of nights ---------------------------------------------
    nights = []
    labels = []
    for day in range(4):  # dishwasher nights, peaks drifting night-to-night
        pair = midnight_hour_pair(seed=day)
        nights.append(pair.night_a if day % 2 else pair.night_b)
        labels.append(f"dishwshr{day}")
    for day in range(3):  # no-dishwasher nights: low, wandering base load
        base = random_walk(450, seed=100 + day, normalize=False)
        nights.append([0.25 + 0.02 * v for v in base])
        labels.append(f"quiet{day}")

    # -- measure W the paper's way (Fig. 3) ----------------------------------
    probe = midnight_hour_pair(seed=0)
    w_est = estimate_warping(probe)
    print(f"measured warping between dishwasher nights: W = {w_est:.0%} "
          "(paper: 34%, rounded to 40%)")

    verdict = analyze(n=450, warping=0.40)
    print(f"case advisor: Case {verdict.case.value} -> "
          f"{verdict.recommendation.value}\n")

    # -- distance matrix + clustering ---------------------------------------
    k = len(nights)
    matrix = [[0.0] * k for _ in range(k)]
    for i in range(k):
        for j in range(i + 1, k):
            d = cdtw(nights[i], nights[j], window=0.40).distance
            matrix[i][j] = matrix[j][i] = d

    merges = linkage(matrix, method="average")
    tree = ClusterNode.from_merges(merges)
    print("average-linkage dendrogram under cDTW_40:")
    print(render_ascii(tree, labels=labels))

    # -- verify the dishwasher nights clustered together ---------------------
    dish = [i for i, l in enumerate(labels) if l.startswith("dish")]
    heights = [tree.cophenetic(a, b) for a in dish for b in dish if a < b]
    cross = [
        tree.cophenetic(a, b)
        for a in dish for b in range(k) if b not in dish
    ]
    print(f"\nmax within-dishwasher merge height: {max(heights):.1f}; "
          f"min cross-group height: {min(cross):.1f}")
    if max(heights) < min(cross):
        print("dishwasher nights form their own subtree -- the conserved "
              "pattern is recoverable despite 34% warping, using exact cDTW.")


if __name__ == "__main__":
    main()
