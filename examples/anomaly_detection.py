"""Anomaly detection: discord discovery over an ECG stream.

Finds the most anomalous heartbeat-length window of a stream -- the
*discord*, the window whose nearest non-overlapping neighbour is
farthest under cDTW -- using the exact repeated-use machinery the
paper champions: the lossless lower-bound cascade inside each
nearest-neighbour scan, plus outer early abandoning.  Renders the
discord and its nearest neighbour as terminal plots.

Run:  python examples/anomaly_detection.py
"""

import random
import time

from repro.anomaly import find_discord
from repro.core import cdtw
from repro.datasets import heartbeat
from repro.preprocess import znorm
from repro.viz import render_alignment, sparkline


def main() -> None:
    # a run of regular beats with one corrupted beat in the middle
    rng = random.Random(7)
    stream = []
    for _ in range(20):
        stream.extend(heartbeat(50, rng, noise_sigma=0.01))
    anomaly_at = 500
    for i in range(anomaly_at, anomaly_at + 30):
        stream[i] += 1.2  # sensor saturation / arrhythmic burst
    print(f"stream of {len(stream)} samples, anomaly planted at "
          f"{anomaly_at}..{anomaly_at + 30}")

    t0 = time.perf_counter()
    discord = find_discord(stream, window=50, band=4, step=5)
    elapsed = time.perf_counter() - t0

    print(f"\ndiscord at offset {discord.start} "
          f"(score {discord.score:.2f}), nearest neighbour at "
          f"{discord.neighbor_start}")
    naive_calls = discord.windows * (discord.windows - 1)
    print(f"{discord.distance_calls} of {naive_calls} possible distance "
          f"calls ({discord.distance_calls / naive_calls:.0%}) "
          f"in {elapsed:.2f} s")

    found = discord.start <= anomaly_at + 30 and (
        discord.start + 50 >= anomaly_at
    )
    print("overlaps the planted anomaly:", "YES" if found else "no")

    # show the discord against its nearest neighbour
    w_discord = znorm(stream[discord.start:discord.start + 50])
    w_neighbor = znorm(
        stream[discord.neighbor_start:discord.neighbor_start + 50]
    )
    print("\ndiscord window:   ", sparkline(w_discord, width=50))
    print("nearest neighbour:", sparkline(w_neighbor, width=50))

    path = cdtw(w_discord, w_neighbor, band=4, return_path=True).path
    print("\neven optimally warped, the discord cannot be explained by "
          "its best match:")
    print(render_alignment(w_discord, w_neighbor, path, width=50))


if __name__ == "__main__":
    main()
