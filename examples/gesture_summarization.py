"""Summarising gesture families: DBA barycenters and DTW k-means.

Two more of the intro's motivating tasks -- summarization and
clustering -- on a warped gesture set: compute one DBA consensus
prototype per class (averaging *under alignment*, where the
arithmetic mean smears time-shifted strokes), then recover the classes
blind with DTW k-means.

Run:  python examples/gesture_summarization.py
"""

from repro.cluster import dba, dtw_kmeans
from repro.core import dtw
from repro.datasets import gesture_dataset
from repro.viz import sparkline


def main() -> None:
    data = gesture_dataset(
        n_classes=3, per_class=6, length=64,
        warp_fraction=0.08, noise_sigma=0.1, seed=21,
    )
    series = [list(s) for s in data.series]
    labels = list(data.labels)
    print(f"{len(series)} gestures, {len(data.classes)} classes, "
          f"N={data.length}, W=8%\n")

    # -- summarization: one consensus series per class --------------------
    print("per-class consensus (DBA) vs the naive arithmetic mean:")
    for c in data.classes:
        members = [s for s, l in zip(series, labels) if l == c]
        consensus = dba(members, max_iterations=8, band=8)
        mean = [
            sum(s[i] for s in members) / len(members)
            for i in range(data.length)
        ]
        mean_inertia = sum(dtw(mean, s).distance for s in members)
        print(f"\nclass {c}:")
        print("  member:    ", sparkline(members[0], width=60))
        print("  DBA:       ", sparkline(list(consensus.barycenter),
                                         width=60))
        print("  arith.mean:", sparkline(mean, width=60))
        print(f"  inertia: DBA {consensus.inertia:.1f} vs "
              f"mean {mean_inertia:.1f} "
              f"({mean_inertia / max(consensus.inertia, 1e-9):.1f}x worse)")

    # -- clustering: recover the classes blind -----------------------------
    print("\nDTW k-means (k=3, band=8%):")
    result = dtw_kmeans(series, k=3, band=5, seed=3)
    agreement = {}
    for assigned, true in zip(result.assignments, labels):
        agreement.setdefault(assigned, []).append(true)
    pure = sum(
        max(members.count(c) for c in set(members))
        for members in agreement.values()
    )
    print(f"  converged in {result.iterations} iterations, "
          f"inertia {result.inertia:.1f}")
    print(f"  cluster purity: {pure}/{len(series)} "
          f"({pure / len(series):.0%})")
    print("\nevery distance in both tasks was exact cDTW -- at these "
          "lengths and windows, approximation would have been slower.")


if __name__ == "__main__":
    main()
