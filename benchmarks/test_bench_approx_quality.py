"""Extension benchmark: the Section 4 approximation-quality grid."""

from repro.core.dtw import dtw
from repro.core.error import approximation_error_percent
from repro.core.fastdtw import fastdtw
from repro.datasets.random_walk import random_walk
from repro.experiments import approx_quality


class TestApproxQualityPerCall:
    def test_error_measurement_cost(self, benchmark):
        x, y = random_walk(256, seed=0), random_walk(256, seed=1)
        exact = dtw(x, y).distance

        def measure():
            approx = fastdtw(x, y, radius=5).distance
            return approximation_error_percent(approx, exact)

        assert benchmark(measure) >= 0


class TestApproxQualityReport:
    def test_regenerate_grid(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: approx_quality.run(), rounds=1, iterations=1
        )
        save_report(
            "approx_quality", approx_quality.format_report(result)
        )
        assert result.benign_families_converge(radius=10, tolerance=15.0)
        assert result.long_range_families_stay_broken(radius=10)
