"""Footnote 2 benchmarks: per-call costs behind the trillion projection."""

from repro.core.cdtw import cdtw
from repro.core.fastdtw_reference import fastdtw_reference
from repro.datasets.random_walk import random_walk
from repro.experiments import footnote2_trillion


class TestFootnote2PerCall:
    def test_fastdtw10_at_n128(self, benchmark):
        x, y = random_walk(128, seed=0), random_walk(128, seed=1)
        result = benchmark(lambda: fastdtw_reference(x, y, radius=10))
        assert result.distance >= 0

    def test_cdtw5_at_n128(self, benchmark):
        x, y = random_walk(128, seed=0), random_walk(128, seed=1)
        result = benchmark(lambda: cdtw(x, y, window=0.05))
        assert result.distance >= 0


class TestFootnote2Report:
    def test_regenerate_projection(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: footnote2_trillion.run(), rounds=1, iterations=1
        )
        save_report(
            "footnote2", footnote2_trillion.format_report(result)
        )
        # the years-vs-days shape: FastDTW at least 10x slower per call
        assert result.gap_factor() > 10.0
