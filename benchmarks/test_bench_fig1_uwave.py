"""Fig. 1 benchmarks: the head-to-head the paper's title rests on.

Per-pair timings at the paper's N = 945 for cDTW at the archive-optimal
and liberal windows, against FastDTW (reference layout, as the citing
literature ran it) at representative radii.  The full sweep report is
regenerated into ``reports/fig1.txt``.
"""

import pytest

from repro.core.cdtw import cdtw
from repro.core.fastdtw import fastdtw
from repro.core.fastdtw_reference import fastdtw_reference
from repro.experiments import fig1_uwave


class TestFig1PerPair:
    def test_cdtw_w4(self, benchmark, uwave_pair):
        x, y = uwave_pair
        result = benchmark(lambda: cdtw(x, y, window=0.04))
        assert result.distance >= 0

    def test_cdtw_w20(self, benchmark, uwave_pair):
        x, y = uwave_pair
        result = benchmark(lambda: cdtw(x, y, window=0.20))
        assert result.distance >= 0

    def test_fastdtw_reference_r0(self, benchmark, uwave_pair):
        x, y = uwave_pair
        result = benchmark(lambda: fastdtw_reference(x, y, radius=0))
        assert result.distance >= 0

    def test_fastdtw_reference_r1(self, benchmark, uwave_pair):
        x, y = uwave_pair
        result = benchmark(lambda: fastdtw_reference(x, y, radius=1))
        assert result.distance >= 0

    def test_fastdtw_reference_r10(self, benchmark, uwave_pair):
        x, y = uwave_pair
        result = benchmark.pedantic(
            lambda: fastdtw_reference(x, y, radius=10),
            rounds=3, iterations=1,
        )
        assert result.distance >= 0

    def test_fastdtw_optimized_r10(self, benchmark, uwave_pair):
        x, y = uwave_pair
        result = benchmark(lambda: fastdtw(x, y, radius=10))
        assert result.distance >= 0


class TestFig1Report:
    def test_regenerate_figure(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: fig1_uwave.run(), rounds=1, iterations=1
        )
        report = fig1_uwave.format_report(result)
        save_report("fig1", report)
        # the paper-shape claims, re-asserted at bench scale
        assert result.serviceable_claim_holds()
        assert result.dominates_from_radius() <= 1
