"""Section 3.4 benchmarks: repeated-use search under each strategy."""

from repro.datasets.gestures import gesture_dataset
from repro.experiments import repeated_use
from repro.search.nn_search import nearest_neighbor


def _workload():
    data = gesture_dataset(
        n_classes=4, per_class=10, length=128, seed=3, name="bench"
    )
    series = [list(s) for s in data.series]
    return series[0], series[1:]


class TestNnStrategies:
    def test_plain_cdtw_search(self, benchmark):
        query, candidates = _workload()
        res = benchmark(
            lambda: nearest_neighbor(query, candidates, "cdtw",
                                     window=0.10)
        )
        assert res.distance >= 0

    def test_cascaded_cdtw_search(self, benchmark):
        query, candidates = _workload()
        res = benchmark(
            lambda: nearest_neighbor(query, candidates, "cdtw+lb",
                                     window=0.10)
        )
        assert res.distance >= 0

    def test_fastdtw_search(self, benchmark):
        query, candidates = _workload()
        res = benchmark(
            lambda: nearest_neighbor(query, candidates, "fastdtw",
                                     radius=10)
        )
        assert res.distance >= 0

    def test_euclidean_search(self, benchmark):
        query, candidates = _workload()
        res = benchmark(
            lambda: nearest_neighbor(query, candidates, "euclidean")
        )
        assert res.distance >= 0


class TestRepeatedUseReport:
    def test_regenerate_comparison(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: repeated_use.run(), rounds=1, iterations=1
        )
        save_report("repeated_use", repeated_use.format_report(result))
        assert result.exact_strategies_agree()
        assert result.cascade_cell_fraction() < 1.0
