"""Shared benchmark fixtures and the report sink.

Every benchmark file regenerates its paper artefact (the table rows or
figure series) and saves it under ``benchmarks/reports/`` so a bench
run leaves tangible reproductions behind, not just timings.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def save_report():
    """Write a regenerated paper artefact to benchmarks/reports/."""
    REPORTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = REPORTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save


@pytest.fixture(scope="session")
def uwave_pair():
    """One pair of UWave-scale series (N = 945), as in Fig. 1."""
    from repro.datasets.gestures import uwave_like

    data = uwave_like(per_class=1, seed=0)
    return list(data.series[0]), list(data.series[1])


@pytest.fixture(scope="session")
def case_c_pair():
    """One pair of N = 450 random walks, as in Fig. 4."""
    from repro.datasets.random_walk import random_walk

    return random_walk(450, seed=1), random_walk(450, seed=2)
