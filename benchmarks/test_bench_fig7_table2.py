"""Table 2 / Fig. 7 benchmarks: the adversarial triple.

Regenerates both distance matrices, the 156,100%-class error and the
dendrogram flip; benchmarks the two distance computations involved.
"""

from repro.core.dtw import dtw
from repro.core.fastdtw import fastdtw
from repro.datasets.adversarial import adversarial_pair
from repro.experiments import fig7_adversarial


class TestTable2PerCall:
    def test_full_dtw_on_pair(self, benchmark):
        t = adversarial_pair()
        result = benchmark(lambda: dtw(t.a, t.b))
        assert result.distance < 0.1

    def test_fastdtw20_on_pair(self, benchmark):
        t = adversarial_pair()
        result = benchmark(lambda: fastdtw(t.a, t.b, radius=20))
        assert result.distance > 10.0


class TestFig7Report:
    def test_regenerate_table_and_dendrograms(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: fig7_adversarial.run(), rounds=1, iterations=1
        )
        save_report(
            "table2_fig7", fig7_adversarial.format_report(result)
        )
        assert result.ab_error_percent > 100_000
        assert result.topologies_differ()
