"""Fig. 2 benchmark: the UCR archive histograms."""

from repro.datasets.ucr_meta import best_w_histogram, length_histogram
from repro.experiments import fig2_ucr_histograms


class TestFig2:
    def test_w_histogram_cost(self, benchmark):
        counts = benchmark(best_w_histogram)
        assert sum(counts) == 128

    def test_length_histogram_cost(self, benchmark):
        counts = benchmark(length_histogram)
        assert sum(counts) == 128

    def test_regenerate_figure(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: fig2_ucr_histograms.run(), rounds=1, iterations=1
        )
        save_report("fig2", fig2_ucr_histograms.format_report(result))
        assert result.fraction_shorter_than_1000 > 0.75
        assert result.fraction_w_at_most_10 > 0.80
