"""Fig. 8 benchmarks: the wrong-way-warping mechanism."""

from repro.core.dtw import dtw
from repro.core.paa import paa_factor
from repro.datasets.adversarial import adversarial_pair
from repro.experiments import fig8_wrong_way


class TestFig8PerCall:
    def test_paa_8_to_1_cost(self, benchmark):
        t = adversarial_pair()
        coarse = benchmark(lambda: paa_factor(t.a, 8))
        assert len(coarse) == t.length // 8

    def test_coarse_alignment_cost(self, benchmark):
        t = adversarial_pair()
        pa, pb = paa_factor(t.a, 8), paa_factor(t.b, 8)
        result = benchmark(lambda: dtw(pa, pb, return_path=True))
        assert result.path is not None


class TestFig8Report:
    def test_regenerate_mechanism(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: fig8_wrong_way.run(), rounds=1, iterations=1
        )
        save_report("fig8", fig8_wrong_way.format_report(result))
        assert result.wrong_way()
        assert not result.final_window_reaches_feature
