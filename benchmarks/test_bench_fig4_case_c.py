"""Fig. 4 benchmarks: short series, wide windows (Case C).

Per-pair costs at the paper's N = 450 for windows/radii up to 40, plus
the regenerated sweep.
"""

from repro.core.cdtw import cdtw
from repro.core.fastdtw_reference import fastdtw_reference
from repro.experiments import fig4_case_c


class TestFig4PerPair:
    def test_cdtw_w8(self, benchmark, case_c_pair):
        x, y = case_c_pair
        assert benchmark(lambda: cdtw(x, y, window=0.08)).distance >= 0

    def test_cdtw_w40(self, benchmark, case_c_pair):
        x, y = case_c_pair
        assert benchmark(lambda: cdtw(x, y, window=0.40)).distance >= 0

    def test_fastdtw_r2(self, benchmark, case_c_pair):
        x, y = case_c_pair
        assert benchmark(
            lambda: fastdtw_reference(x, y, radius=2)
        ).distance >= 0

    def test_fastdtw_r40(self, benchmark, case_c_pair):
        x, y = case_c_pair
        result = benchmark.pedantic(
            lambda: fastdtw_reference(x, y, radius=40),
            rounds=3, iterations=1,
        )
        assert result.distance >= 0


class TestFig4Report:
    def test_regenerate_figure(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: fig4_case_c.run(), rounds=1, iterations=1
        )
        save_report("fig4", fig4_case_c.format_report(result))
        # the paper's Case C verdict: even at matched w = r = 40,
        # exact cDTW undercuts FastDTW
        assert (
            result.cdtw_points[-1].per_pair_seconds
            < result.fastdtw_points[-1].per_pair_seconds
        )
