"""Extension benchmarks: discord discovery under exact cDTW."""

import random

from repro.anomaly.discord import find_discord
from repro.datasets.ecg import heartbeat


def _stream():
    rng = random.Random(5)
    stream = []
    for _ in range(14):
        stream.extend(heartbeat(36, rng, noise_sigma=0.01))
    for i in range(250, 268):
        stream[i] += 1.3
    return stream


class TestDiscordBench:
    def test_discord_search(self, benchmark):
        stream = _stream()
        discord = benchmark.pedantic(
            lambda: find_discord(stream, window=36, band=3, step=6),
            rounds=2, iterations=1,
        )
        assert discord.score > 0

    def test_pruning_report(self, benchmark, save_report):
        stream = _stream()
        discord = benchmark.pedantic(
            lambda: find_discord(stream, window=36, band=3, step=6),
            rounds=1, iterations=1,
        )
        naive = discord.windows * (discord.windows - 1)
        save_report(
            "ext_discord",
            f"discord at {discord.start} (score {discord.score:.2f})\n"
            f"distance calls: {discord.distance_calls} of {naive} "
            f"({discord.distance_calls / naive:.0%})",
        )
        assert discord.distance_calls < naive
