"""Extension benchmarks: DTW barycenter averaging."""

import random

from repro.cluster.dba import dba
from repro.core.dtw import dtw
from repro.datasets.warping import warp_series


def _family():
    base = [0.0] * 12 + [1.0, 2.5, 3.0, 2.5, 1.0] + [0.0] * 23
    rng = random.Random(8)
    return [warp_series(base, 4.0, rng) for _ in range(6)], base


class TestDbaBench:
    def test_dba_iterations(self, benchmark):
        family, _ = _family()
        result = benchmark.pedantic(
            lambda: dba(family, max_iterations=5, band=6),
            rounds=2, iterations=1,
        )
        assert result.inertia >= 0

    def test_barycenter_quality_report(self, benchmark, save_report):
        family, base = _family()
        result = benchmark.pedantic(
            lambda: dba(family, max_iterations=10),
            rounds=1, iterations=1,
        )
        n = len(family[0])
        mean = [sum(s[i] for s in family) / len(family)
                for i in range(n)]
        mean_inertia = sum(dtw(mean, s).distance for s in family)
        save_report(
            "ext_dba",
            f"{len(family)} warped renditions, N={n}:\n"
            f"  arithmetic-mean inertia: {mean_inertia:8.3f}\n"
            f"  DBA inertia:             {result.inertia:8.3f}\n"
            f"  distance to true shape:  "
            f"{dtw(list(result.barycenter), base).distance:8.3f}",
        )
        assert result.inertia <= mean_inertia
