"""Extension benchmarks: cumulative-suffix-bound abandoning.

Quantifies the UCR-suite trick: at a tight threshold the cumulative
bound abandons after a fraction of the cells plain early abandoning
touches.
"""

from repro.core.cdtw import cdtw
from repro.lowerbounds.envelope import envelope
from repro.search.cumulative import cdtw_cumulative_abandon
from repro.datasets.random_walk import random_walk

N = 256
BAND = 12


def _setup():
    x = random_walk(N, seed=60)
    y = random_walk(N, seed=61)
    exact = cdtw(x, y, band=BAND).distance
    return x, y, exact * 0.3  # a tight best-so-far


class TestCumulativeBench:
    def test_plain_abandoning(self, benchmark):
        x, y, threshold = _setup()
        r = benchmark(
            lambda: cdtw(x, y, band=BAND, abandon_above=threshold)
        )
        assert r.abandoned

    def test_cumulative_abandoning(self, benchmark):
        x, y, threshold = _setup()
        env = envelope(y, BAND)
        r = benchmark(
            lambda: cdtw_cumulative_abandon(
                x, y, band=BAND, threshold=threshold, y_envelope=env
            )
        )
        assert r.abandoned

    def test_cell_savings_report(self, benchmark, save_report):
        x, y, threshold = _setup()
        env = envelope(y, BAND)
        benchmark.pedantic(
            lambda: cdtw_cumulative_abandon(
                x, y, band=BAND, threshold=threshold, y_envelope=env
            ),
            rounds=1, iterations=1,
        )
        plain = cdtw(x, y, band=BAND, abandon_above=threshold)
        cumulative = cdtw_cumulative_abandon(
            x, y, band=BAND, threshold=threshold, y_envelope=env
        )
        full = cdtw(x, y, band=BAND)
        save_report(
            "ext_cumulative",
            f"N={N}, band={BAND}, threshold = 0.3 x exact:\n"
            f"  full DP cells:       {full.cells}\n"
            f"  plain abandon cells: {plain.cells}\n"
            f"  cumulative cells:    {cumulative.cells}",
        )
        assert cumulative.cells <= plain.cells <= full.cells
