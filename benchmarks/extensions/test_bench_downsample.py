"""Extension benchmark: downsample-then-DTW vs FastDTW.

The paper's Section 3.4 alternative, head to head: when an
approximation is genuinely wanted, exact DTW over a PAA-reduced series
is an order of magnitude faster than FastDTW, with an error that is
*transparent* (everything below the PAA scale is gone, by design)
rather than structural (wrong-way corridors).  Which error is larger
is workload-dependent; the report records both.
"""

from repro.core.downsample_dtw import downsampled_dtw
from repro.core.dtw import dtw
from repro.core.error import approximation_error_percent
from repro.core.fastdtw import fastdtw
from repro.datasets.gestures import gesture_dataset

N = 512


def _pair():
    data = gesture_dataset(
        n_classes=2, per_class=1, length=N, noise_sigma=0.02, seed=3,
    )
    return list(data.series[0]), list(data.series[1])


class TestDownsampleBench:
    def test_downsample_factor8(self, benchmark):
        x, y = _pair()
        r = benchmark(lambda: downsampled_dtw(x, y, factor=8))
        assert r.distance >= 0

    def test_fastdtw_r10(self, benchmark):
        x, y = _pair()
        r = benchmark(lambda: fastdtw(x, y, radius=10))
        assert r.distance >= 0

    def test_speed_and_error_report(self, benchmark, save_report):
        import time

        x, y = _pair()
        benchmark.pedantic(lambda: downsampled_dtw(x, y, factor=8),
                           rounds=1, iterations=1)

        def clock(fn):
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        exact = dtw(x, y).distance
        down = downsampled_dtw(x, y, factor=8)
        fast = fastdtw(x, y, radius=10)
        t_down = clock(lambda: downsampled_dtw(x, y, factor=8))
        t_fast = clock(lambda: fastdtw(x, y, radius=10))
        save_report(
            "ext_downsample",
            f"gesture pair, N={N}:\n"
            f"  downsample f=8: {t_down * 1000:7.2f} ms, error "
            f"{approximation_error_percent(down.distance, exact):7.1f}%\n"
            f"  FastDTW r=10:   {t_fast * 1000:7.2f} ms, error "
            f"{approximation_error_percent(fast.distance, exact):7.1f}%",
        )
        assert t_down < t_fast
