"""Extension benchmarks: multivariate DTW vs magnitude-reduced 1-D.

Gestures are natively 3-axis; the common shortcut reduces them to the
per-sample magnitude and runs scalar DTW.  These benches measure the
cost of doing it properly (vector local costs) versus the reduction,
and check the paper's verdict survives the lift: multivariate cDTW
still undercuts multivariate FastDTW.
"""

from repro.core.multivariate import cdtw_nd, dtw_nd, fastdtw_nd, magnitude
from repro.core.cdtw import cdtw
from repro.datasets.gestures import multivariate_gestures


def _pair():
    series, _labels = multivariate_gestures(
        n_classes=2, per_class=1, length=128, axes=3, seed=0
    )
    return series[0], series[1]


class TestMultivariateBench:
    def test_cdtw_nd(self, benchmark):
        x, y = _pair()
        assert benchmark(lambda: cdtw_nd(x, y, window=0.1)).distance >= 0

    def test_fastdtw_nd(self, benchmark):
        x, y = _pair()
        assert benchmark(lambda: fastdtw_nd(x, y, radius=5)).distance >= 0

    def test_magnitude_reduction_scalar_cdtw(self, benchmark):
        x, y = _pair()
        mx, my = magnitude(x), magnitude(y)
        assert benchmark(lambda: cdtw(mx, my, window=0.1)).distance >= 0

    def test_verdict_survives_the_lift(self, benchmark, save_report):
        import time

        x, y = _pair()
        benchmark.pedantic(lambda: cdtw_nd(x, y, window=0.1),
                           rounds=1, iterations=1)

        def clock(fn):
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        t_cdtw = clock(lambda: cdtw_nd(x, y, window=0.1))
        t_fast = clock(lambda: fastdtw_nd(x, y, radius=10))
        t_full = clock(lambda: dtw_nd(x, y))
        save_report(
            "ext_multivariate",
            f"3-axis gestures, N=128:\n"
            f"  cdtw_nd w=10%:   {t_cdtw * 1000:8.2f} ms\n"
            f"  fastdtw_nd r=10: {t_fast * 1000:8.2f} ms\n"
            f"  dtw_nd (full):   {t_full * 1000:8.2f} ms",
        )
        assert t_cdtw < t_fast
