"""Fig. 3 benchmarks: the power-demand pair and the W estimate."""

from repro.core.dtw import dtw
from repro.datasets.power import estimate_warping, midnight_hour_pair
from repro.experiments import fig3_power


class TestFig3:
    def test_generation_cost(self, benchmark):
        pair = benchmark(lambda: midnight_hour_pair(seed=0))
        assert pair.length == 450

    def test_peak_based_estimate_cost(self, benchmark):
        pair = midnight_hour_pair(seed=0)
        w = benchmark(lambda: estimate_warping(pair))
        assert abs(w - 0.34) < 0.01

    def test_full_alignment_cost(self, benchmark):
        pair = midnight_hour_pair(seed=0)
        result = benchmark(lambda: dtw(pair.night_a, pair.night_b))
        assert result.distance >= 0

    def test_regenerate_figure(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: fig3_power.run(), rounds=1, iterations=1
        )
        save_report("fig3", fig3_power.format_report(result))
        assert result.peak_offset == 153
        assert result.case.value == "C"
