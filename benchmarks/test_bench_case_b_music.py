"""Case B (Section 3.2) benchmarks: music alignment at long N, tiny w.

The paper's bullet list -- cDTW_0.83 at 45.6 ms vs FastDTW_10 at
238.2 ms and FastDTW_40 at 350.9 ms for N = 24,000 -- regenerated at a
laptop-friendly N with the same w.
"""

import pytest

from repro.core.cdtw import cdtw
from repro.core.fastdtw_reference import fastdtw_reference
from repro.datasets.music import studio_and_live
from repro.experiments import case_b_music


@pytest.fixture(scope="module")
def music_pair():
    # one minute at 100 Hz: N = 6,000, w = 0.83%
    return studio_and_live(seconds=60.0, max_drift_seconds=0.5, seed=0)


class TestCaseBPerCall:
    def test_cdtw_at_drift_window(self, benchmark, music_pair):
        pair = music_pair
        result = benchmark(
            lambda: cdtw(pair.studio, pair.live,
                         window=pair.window_fraction)
        )
        assert result.distance >= 0

    def test_fastdtw_r10(self, benchmark, music_pair):
        pair = music_pair
        result = benchmark.pedantic(
            lambda: fastdtw_reference(pair.studio, pair.live, radius=10),
            rounds=2, iterations=1,
        )
        assert result.distance >= 0

    def test_fastdtw_r40(self, benchmark, music_pair):
        pair = music_pair
        result = benchmark.pedantic(
            lambda: fastdtw_reference(pair.studio, pair.live, radius=40),
            rounds=2, iterations=1,
        )
        assert result.distance >= 0


class TestCaseBReport:
    def test_regenerate_bullets(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: case_b_music.run(), rounds=1, iterations=1
        )
        save_report("case_b", case_b_music.format_report(result))
        assert result.cdtw_wins()
        assert result.radius_hurts()
