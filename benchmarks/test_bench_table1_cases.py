"""Table 1 benchmark: the case advisor and the archive census."""

from repro.advisor.cases import analyze
from repro.datasets.ucr_meta import case_census
from repro.experiments import table1_cases


class TestTable1:
    def test_advisor_classification_cost(self, benchmark):
        analysis = benchmark(lambda: analyze(n=945, warping=0.04))
        assert analysis.case.value == "A"

    def test_archive_census_cost(self, benchmark):
        census = benchmark(case_census)
        assert sum(census.values()) == 128

    def test_regenerate_table(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: table1_cases.run(), rounds=1, iterations=1
        )
        save_report("table1", table1_cases.format_report(result))
        cases = [a.case.value for _, a in result.examples]
        assert cases == ["A", "B", "C", "D"]
