"""Ablation: pure-Python engine vs NumPy backend for banded DTW.

The head-to-head experiments use the pure engine for both contenders
("same language, same hardware").  This ablation shows backend choice
does not change the cDTW-vs-FastDTW verdict: the anti-diagonal
wavefront kernel accelerates exact cDTW while returning bit-identical
distances, so under either backend exact cDTW undercuts FastDTW.
"""

import numpy as np

from repro.core.cdtw import cdtw
from repro.core.fastdtw import fastdtw
from repro.core.numpy_backend import dtw_numpy
from repro.datasets.random_walk import random_walk

N = 512


def _pair():
    return random_walk(N, seed=20), random_walk(N, seed=21)


class TestBackendAblation:
    def test_pure_python_banded(self, benchmark):
        x, y = _pair()
        assert benchmark(lambda: cdtw(x, y, band=26)).distance >= 0

    def test_numpy_banded(self, benchmark):
        x, y = _pair()
        xa, ya = np.array(x), np.array(y)
        assert benchmark(lambda: dtw_numpy(xa, ya, band=26)).distance >= 0

    def test_backends_agree(self, benchmark):
        x, y = _pair()
        pure = cdtw(x, y, band=26).distance
        vect = benchmark(lambda: dtw_numpy(np.array(x), np.array(y),
                                           band=26).distance)
        assert pure == vect

    def test_numpy_cdtw_vs_fastdtw_verdict_unchanged(self, benchmark,
                                                     save_report):
        import time

        x, y = _pair()
        benchmark.pedantic(lambda: cdtw(x, y, band=26),
                           rounds=1, iterations=1)
        xa, ya = np.array(x), np.array(y)

        def clock(fn):
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        numpy_cdtw = clock(lambda: dtw_numpy(xa, ya, band=26))
        pure_cdtw = clock(lambda: cdtw(x, y, band=26))
        fast = clock(lambda: fastdtw(x, y, radius=10))
        save_report(
            "ablation_backends",
            f"cDTW (pure python): {pure_cdtw * 1000:8.2f} ms\n"
            f"cDTW (numpy):       {numpy_cdtw * 1000:8.2f} ms\n"
            f"FastDTW_10 (opt):   {fast * 1000:8.2f} ms",
        )
        # accelerating the exact algorithm only widens its lead
        assert numpy_cdtw < fast
