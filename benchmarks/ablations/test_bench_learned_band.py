"""Ablation: learned (R-K) band vs uniform band at equal coverage.

Both windows contain every training alignment; the learned one does it
with fewer cells, so exact classification gets cheaper still -- the
adaptive version of the paper's "a little warping is a good thing".
"""

from repro.classify.learned_band import learn_band_radii, learned_band_dtw
from repro.core.cdtw import cdtw
from repro.datasets.gestures import gesture_dataset


def _task():
    data = gesture_dataset(
        n_classes=3, per_class=5, length=96,
        warp_fraction=0.05, noise_sigma=0.1, seed=17, name="rk-bench",
    )
    series = [list(s) for s in data.series]
    labels = list(data.labels)
    radii = learn_band_radii(series, labels)
    return series, radii


class TestLearnedBandAblation:
    def test_learned_band_dtw(self, benchmark):
        series, radii = _task()
        r = benchmark(
            lambda: learned_band_dtw(series[0], series[1], radii)
        )
        assert r.distance >= 0

    def test_uniform_worstcase_band_dtw(self, benchmark):
        series, radii = _task()
        worst = max(radii)
        r = benchmark(
            lambda: cdtw(series[0], series[1], band=worst)
        )
        assert r.distance >= 0

    def test_cell_savings_report(self, benchmark, save_report):
        series, radii = _task()
        benchmark.pedantic(
            lambda: learned_band_dtw(series[0], series[1], radii),
            rounds=1, iterations=1,
        )
        worst = max(radii)
        learned = learned_band_dtw(series[0], series[1], radii)
        uniform = cdtw(series[0], series[1], band=worst)
        save_report(
            "ablation_learned_band",
            f"N={len(series[0])}, worst-case radius {worst}:\n"
            f"  uniform band cells: {uniform.cells}\n"
            f"  learned band cells: {learned.cells}\n"
            f"  saving:             "
            f"{1 - learned.cells / uniform.cells:.0%}",
        )
        assert learned.cells <= uniform.cells
