"""Ablation: FastDTW's time by phase (DP vs structural overhead).

The cell model ``N*(8r+14)`` only accounts for the DP phase; this
ablation measures how much of the algorithm's wall-clock goes to
coarsening and window construction, explaining why measured
crossovers land later than the model predicts.
"""

from repro.timing.profile_fastdtw import profile_fastdtw
from repro.datasets.random_walk import random_walk

N = 512


class TestPhaseProfile:
    def test_profiled_run(self, benchmark):
        x, y = random_walk(N, seed=70), random_walk(N, seed=71)
        prof = benchmark(lambda: profile_fastdtw(x, y, radius=5))
        assert prof.distance >= 0

    def test_phase_breakdown_report(self, benchmark, save_report):
        x, y = random_walk(N, seed=72), random_walk(N, seed=73)
        prof = benchmark.pedantic(
            lambda: profile_fastdtw(x, y, radius=10),
            rounds=3, iterations=1,
        )
        save_report(
            "ablation_phase_profile",
            f"FastDTW_10 at N={N} ({prof.levels} levels):\n"
            f"  coarsening: {prof.coarsen_seconds * 1000:7.2f} ms\n"
            f"  windows:    {prof.window_seconds * 1000:7.2f} ms\n"
            f"  DP:         {prof.dp_seconds * 1000:7.2f} ms\n"
            f"  overhead share: {prof.overhead_fraction():.0%}",
        )
        assert prof.overhead_fraction() > 0.0
