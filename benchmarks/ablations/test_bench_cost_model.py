"""Ablation: wall-clock tracks the cell-count cost model.

DESIGN.md's hardware-independent cost model claims timing ratios follow
cell-count ratios for the shared-engine implementations.  This bench
measures both at several windows and asserts the correlation.
"""

from repro.core.cdtw import cdtw
from repro.datasets.random_walk import random_walk
from repro.timing.cells import cdtw_cell_model

N = 512


class TestCostModel:
    def test_cdtw_cells_scale_like_model(self, benchmark, save_report):
        import time

        x = random_walk(N, seed=40)
        y = random_walk(N, seed=41)
        benchmark.pedantic(lambda: cdtw(x, y, window=0.10),
                           rounds=1, iterations=1)
        rows = []
        measured = []
        for w in (0.02, 0.05, 0.10, 0.20, 0.40):
            start = time.perf_counter()
            result = cdtw(x, y, window=w)
            elapsed = time.perf_counter() - start
            model = cdtw_cell_model(N, w)
            rows.append(
                f"w={w:.0%}: cells={result.cells} model={model} "
                f"time={elapsed * 1000:.2f} ms"
            )
            measured.append((result.cells, elapsed))
        save_report("ablation_cost_model", "\n".join(rows))

        # timing must grow monotonically with cells, and the per-cell
        # rate must stay within a 3x envelope across the sweep
        times = [t for _c, t in measured]
        assert times == sorted(times)
        rates = [t / c for c, t in measured]
        assert max(rates) / min(rates) < 3.0

    def test_model_matches_measured_cells(self, benchmark):
        x = random_walk(N, seed=42)
        y = random_walk(N, seed=43)
        result = benchmark(lambda: cdtw(x, y, window=0.10))
        model = cdtw_cell_model(N, 0.10)
        assert abs(result.cells - model) / model < 0.1
