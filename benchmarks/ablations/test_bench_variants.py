"""Ablation: reference vs optimised FastDTW.

Quantifies how much of FastDTW's measured slowness is the published
implementation's data structures (hash-map DP, set-based windows)
versus the algorithm's inherent cell count.  Even the optimised
variant loses to banded cDTW at realistic windows, so the paper's
conclusion is not an artefact of the reference layout -- but the
layout does cost a further ~5-10x.
"""

from repro.core.cdtw import cdtw
from repro.core.fastdtw import fastdtw
from repro.core.fastdtw_reference import fastdtw_reference
from repro.datasets.random_walk import random_walk

N = 512


def _pair():
    return random_walk(N, seed=10), random_walk(N, seed=11)


class TestVariantAblation:
    def test_reference_r5(self, benchmark):
        x, y = _pair()
        assert benchmark(
            lambda: fastdtw_reference(x, y, radius=5)
        ).distance >= 0

    def test_optimized_r5(self, benchmark):
        x, y = _pair()
        assert benchmark(lambda: fastdtw(x, y, radius=5)).distance >= 0

    def test_reference_r20(self, benchmark):
        x, y = _pair()
        result = benchmark.pedantic(
            lambda: fastdtw_reference(x, y, radius=20),
            rounds=3, iterations=1,
        )
        assert result.distance >= 0

    def test_optimized_r20(self, benchmark):
        x, y = _pair()
        assert benchmark(lambda: fastdtw(x, y, radius=20)).distance >= 0

    def test_cdtw_baseline_w5(self, benchmark):
        # the exact competitor both variants must beat and don't
        x, y = _pair()
        assert benchmark(lambda: cdtw(x, y, window=0.05)).distance >= 0

    def test_even_optimized_fastdtw_loses_report(self, benchmark,
                                                 save_report):
        import time

        x, y = _pair()
        benchmark.pedantic(lambda: fastdtw(x, y, radius=5),
                           rounds=1, iterations=1)

        def clock(fn):
            start = time.perf_counter()
            fn()
            return time.perf_counter() - start

        rows = []
        for label, fn in (
            ("cDTW_5", lambda: cdtw(x, y, window=0.05)),
            ("optimized FastDTW_5", lambda: fastdtw(x, y, radius=5)),
            ("reference FastDTW_5",
             lambda: fastdtw_reference(x, y, radius=5)),
        ):
            t = min(clock(fn) for _ in range(3))
            rows.append(f"{label:<22} {t * 1000:8.2f} ms")
        save_report("ablation_variants", "\n".join(rows))

        cdtw_t = min(
            clock(lambda: cdtw(x, y, window=0.05)) for _ in range(3)
        )
        opt_t = min(
            clock(lambda: fastdtw(x, y, radius=5)) for _ in range(3)
        )
        assert cdtw_t < opt_t
