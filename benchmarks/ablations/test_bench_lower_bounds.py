"""Ablation: what each lower-bound stage buys in 1-NN search.

Section 3.4's repeated-use argument quantified: the cascade is lossless
(identical neighbours) while evaluating a fraction of the DP cells;
each stage contributes.
"""

from repro.datasets.gestures import gesture_dataset
from repro.lowerbounds.cascade import LowerBoundCascade
from repro.search.nn_search import nearest_neighbor


def _workload():
    data = gesture_dataset(
        n_classes=4, per_class=12, length=128, seed=9, name="lb-bench"
    )
    series = [list(s) for s in data.series]
    return series[0], series[1:]


class TestLowerBoundAblation:
    def test_no_bounds(self, benchmark):
        query, candidates = _workload()
        res = benchmark(
            lambda: nearest_neighbor(query, candidates, "cdtw",
                                     window=0.10)
        )
        assert res.distance >= 0

    def test_full_cascade(self, benchmark):
        query, candidates = _workload()
        res = benchmark(
            lambda: nearest_neighbor(query, candidates, "cdtw+lb",
                                     window=0.10)
        )
        assert res.distance >= 0

    def test_cascade_without_reversed_stage(self, benchmark):
        query, candidates = _workload()
        band = 13  # ceil(0.10 * 128)

        def search():
            cascade = LowerBoundCascade(query, band, use_reversed=False)
            return cascade.nearest(candidates)

        idx, dist = benchmark(search)
        assert dist >= 0

    def test_stage_contributions_report(self, benchmark, save_report):
        query, candidates = _workload()
        res = benchmark.pedantic(
            lambda: nearest_neighbor(query, candidates, "cdtw+lb",
                                     window=0.10),
            rounds=1, iterations=1,
        )
        s = res.stats
        save_report(
            "ablation_lower_bounds",
            f"candidates:            {s.candidates}\n"
            f"pruned by LB_Kim:      {s.pruned_kim}\n"
            f"pruned by LB_Keogh:    {s.pruned_keogh}\n"
            f"pruned by reversed LB: {s.pruned_keogh_reversed}\n"
            f"abandoned mid-DTW:     {s.abandoned_dtw}\n"
            f"full DTW computed:     {s.full_dtw}\n"
            f"prune rate:            {s.prune_rate():.0%}",
        )
        plain = nearest_neighbor(query, candidates, "cdtw", window=0.10)
        assert res.index == plain.index
        assert res.cells < plain.cells
