"""Ablation: per-row range windows vs explicit cell-list DP.

cDTW's band is two integers per row; the reference FastDTW carries an
explicit cell list and a hash-map DP.  Running the *same* band through
both DP styles isolates the data-structure cost from the cell count.
"""

from repro.core.cost import resolve_cost
from repro.core.engine import dp_over_window
from repro.core.fastdtw_reference import _dtw_over_cells
from repro.core.window import Window
from repro.datasets.random_walk import random_walk

N = 400
BAND = 20


def _setup():
    x = random_walk(N, seed=30)
    y = random_walk(N, seed=31)
    window = Window.band(N, N, BAND)
    cells = list(window.cells())
    return x, y, window, cells


class TestWindowRepresentation:
    def test_range_window_dp(self, benchmark):
        x, y, window, _ = _setup()
        result = benchmark(lambda: dp_over_window(x, y, window))
        assert result.distance >= 0

    def test_cell_list_hashmap_dp(self, benchmark):
        x, y, _, cells = _setup()
        dist_fn = resolve_cost("squared")
        d, _path, _cells = benchmark(
            lambda: _dtw_over_cells(list(x), list(y), cells, dist_fn)
        )
        assert d >= 0

    def test_same_distance_both_ways(self, benchmark, save_report):
        import time

        x, y, window, cells = _setup()
        benchmark.pedantic(lambda: dp_over_window(x, y, window),
                           rounds=1, iterations=1)
        dist_fn = resolve_cost("squared")
        ranged = dp_over_window(x, y, window).distance
        hashed, _p, _c = _dtw_over_cells(list(x), list(y), cells, dist_fn)
        assert abs(ranged - hashed) < 1e-9

        def clock(fn):
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        t_range = clock(lambda: dp_over_window(x, y, window))
        t_hash = clock(
            lambda: _dtw_over_cells(list(x), list(y), cells, dist_fn)
        )
        save_report(
            "ablation_window_repr",
            f"same band (N={N}, band={BAND}), same cells "
            f"({window.cell_count()}):\n"
            f"  per-row ranges DP: {t_range * 1000:8.2f} ms\n"
            f"  cell-list hash DP: {t_hash * 1000:8.2f} ms\n"
            f"  overhead factor:   {t_hash / t_range:8.1f}x",
        )
        assert t_range < t_hash
