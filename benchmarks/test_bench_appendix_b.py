"""Appendix B benchmarks: third-party gesture classification redone.

The paper's independent confirmation: swapping FastDTW_30 for exact
cDTW made a published classifier both faster (~24x) and more accurate
(+4.8 points).  Regenerated on the synthetic gesture task.
"""

from repro.classify.knn import DistanceSpec, OneNearestNeighbor
from repro.datasets.gestures import gesture_dataset
from repro.experiments import appendix_b


def _fitted(spec):
    data = gesture_dataset(
        n_classes=4, per_class=6, length=96, seed=7, name="bench"
    )
    train, test = data.split(0.6, seed=7)
    clf = OneNearestNeighbor(spec).fit(
        [list(s) for s in train.series], list(train.labels)
    )
    return clf, [list(s) for s in test.series]


class TestAppendixBPerQuery:
    def test_classify_under_fastdtw30(self, benchmark):
        clf, queries = _fitted(DistanceSpec("fastdtw", radius=30))
        label = benchmark(lambda: clf.predict_one(queries[0]))
        assert label is not None

    def test_classify_under_cdtw_with_lb(self, benchmark):
        clf, queries = _fitted(
            DistanceSpec("cdtw", window=0.10, use_lower_bounds=True)
        )
        label = benchmark(lambda: clf.predict_one(queries[0]))
        assert label is not None


class TestAppendixBReport:
    def test_regenerate_confirmation(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: appendix_b.run(), rounds=1, iterations=1
        )
        save_report("appendix_b", appendix_b.format_report(result))
        assert result.claims_hold()
        assert result.speedup > 2.0
