"""Fig. 5-6 benchmarks: the fall workload and the Case D crossover.

The only setting in the paper where FastDTW ever wins: full-warp
alignments beyond N ~ 400.  Benchmarked at the paper's measured
break-even (N = 400) and regenerated as a sweep.
"""

from repro.core.dtw import dtw
from repro.core.fastdtw import fastdtw
from repro.datasets.falls import fall_pair
from repro.experiments import fig6_fall_crossover


class TestFig6PerCall:
    def test_full_dtw_at_paper_breakeven(self, benchmark):
        pair = fall_pair(4.0, seed=0)
        result = benchmark(lambda: dtw(pair.early, pair.late))
        assert result.distance >= 0

    def test_fastdtw40_at_paper_breakeven(self, benchmark):
        pair = fall_pair(4.0, seed=0)
        result = benchmark(
            lambda: fastdtw(pair.early, pair.late, radius=40)
        )
        assert result.distance >= 0

    def test_full_dtw_below_breakeven(self, benchmark):
        pair = fall_pair(1.0, seed=0)
        result = benchmark(lambda: dtw(pair.early, pair.late))
        assert result.distance >= 0

    def test_fastdtw40_below_breakeven(self, benchmark):
        pair = fall_pair(1.0, seed=0)
        result = benchmark(
            lambda: fastdtw(pair.early, pair.late, radius=40)
        )
        assert result.distance >= 0


class TestFig6Report:
    def test_regenerate_crossover(self, benchmark, save_report):
        result = benchmark.pedantic(
            lambda: fig6_fall_crossover.run(), rounds=1, iterations=1
        )
        save_report(
            "fig5_fig6", fig6_fall_crossover.format_report(result)
        )
        be = result.breakeven()
        # paper: N = 400; the cell model predicts ~167-333 depending
        # on constants; accept the paper's order of magnitude
        assert 100 <= be.n <= 800
