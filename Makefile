# Developer entry points for the reproduction repository.

.PHONY: install test bench reproduce examples clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# regenerate every paper artefact into benchmarks/reports/
reproduce: bench
	@echo "--- regenerated artefacts ---"
	@ls benchmarks/reports/

examples:
	@for f in examples/*.py; do \
		echo "=== $$f"; python $$f || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/reports \
		src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
